"""Ablation experiments (A1-A4 in DESIGN.md).

These probe the design choices the paper fixes without sweeping:

* A1 — IMB strategy: decomposition vs ``auto`` scheduling vs dynamic,
  on skewed and regionally-uneven matrices;
* A2 — delta width: forced 8-bit vs forced 16-bit vs automatic choice;
* A3 — scheduling policy of the *baseline* kernel;
* A4 — decision-tree regularization and feature-set complexity.
"""

from __future__ import annotations

import numpy as np

from ..kernels import ConfiguredSpMV, SpMVConfig, baseline_kernel
from ..machine import KNC, KNL, MachineSpec
from ..matrices import load_suite, named_matrix, training_suite
from ..matrices.features import PAPER_ON_SUBSET, PAPER_ONNZ_SUBSET, O1_FEATURES
from ..ml import DecisionTree, k_fold
from .common import ExperimentTable, PipelineRunner
from .table4 import corpus_features_and_labels

__all__ = [
    "imb_strategy",
    "delta_width",
    "scheduling_policies",
    "tree_ablation",
    "partitioned_ml",
    "bcsr_vs_delta",
    "format_landscape",
    "architecture_sensitivity",
]


def imb_strategy(machine: MachineSpec = KNL, scale: float = 1.0) -> ExperimentTable:
    """A1: which IMB remedy wins where."""
    runner = PipelineRunner(machine)
    base = baseline_kernel()
    variants = {
        "decompose": ConfiguredSpMV(SpMVConfig(decompose=True)),
        "auto": ConfiguredSpMV(SpMVConfig(schedule="auto")),
        "dynamic": ConfiguredSpMV(SpMVConfig(schedule="dynamic")),
    }
    table = ExperimentTable(
        experiment_id="ablation-imb",
        title=f"IMB strategies, speedup over baseline on {machine.codename}",
        headers=("matrix", "kind", *variants.keys()),
    )
    cases = (
        ("ASIC_680k", "few huge rows"),
        ("FullChip", "few huge rows"),
        ("thermal2", "two-region unevenness"),
        ("parabolic_fem", "two-region unevenness"),
        ("consph", "regular (control)"),
    )
    for name, kind in cases:
        csr = named_matrix(name, scale=scale)
        r0 = runner.simulate(base, csr)
        row = [name, kind]
        for kernel in variants.values():
            r = runner.simulate(kernel, csr)
            row.append(float(r.gflops / r0.gflops))
        table.add(*row)
    table.note(
        "expected: decomposition wins on huge-row matrices (a schedule "
        "cannot split a row), auto/dynamic win on regional unevenness"
    )
    return table


def delta_width(machine: MachineSpec = KNC, scale: float = 1.0) -> ExperimentTable:
    """A2: forced delta widths vs the automatic choice."""
    runner = PipelineRunner(machine)
    base = baseline_kernel()
    table = ExperimentTable(
        experiment_id="ablation-delta",
        title=f"Delta-compression width on {machine.codename} "
              "(speedup over baseline; resets per nnz)",
        headers=("matrix", "8-bit", "16-bit", "auto", "auto width",
                 "resets/nnz (8-bit)"),
    )
    for spec, csr in load_suite(
        scale=scale, names=("consph", "boneS10", "poisson3Db", "webbase-1M")
    ):
        r0 = runner.simulate(base, csr)
        row: list = [spec.name]
        auto_width = None
        resets8 = None
        for width in (8, 16, None):
            kernel = ConfiguredSpMV(
                SpMVConfig(compress=True, vectorize=True, delta_width=width)
            )
            data = kernel.preprocess(csr)
            delta = data.delta
            if width == 8:
                resets8 = delta.n_resets / max(csr.nnz, 1)
            if width is None:
                auto_width = delta.width
            r = runner.simulate(kernel, csr, data=data)
            row.append(float(r.gflops / r0.gflops))
        row.append(f"{auto_width}-bit")
        row.append(float(resets8))
        table.add(*row)
    table.note(
        "expected: 8-bit wins on narrow-band matrices, 16-bit on "
        "scattered ones; auto picks the right one"
    )
    return table


def scheduling_policies(machine: MachineSpec = KNC,
                        scale: float = 1.0) -> ExperimentTable:
    """A3: baseline-kernel scheduling policy comparison."""
    runner = PipelineRunner(machine)
    policies = ("static-rows", "balanced-nnz", "auto", "dynamic")
    table = ExperimentTable(
        experiment_id="ablation-sched",
        title=f"Scheduling policies on {machine.codename} (Gflop/s)",
        headers=("matrix", *policies),
    )
    for spec, csr in load_suite(
        scale=scale,
        names=("consph", "citationCiteseer", "ASIC_680k", "thermal2"),
    ):
        row: list = [spec.name]
        for policy in policies:
            kernel = ConfiguredSpMV(SpMVConfig(schedule=policy))
            r = runner.simulate(kernel, csr, label=f"sched:{policy}")
            row.append(float(r.gflops))
        table.add(*row)
    table.note(
        "expected: balanced-nnz ~ static-rows on regular matrices; "
        "static-rows collapses on skewed ones"
    )
    return table


def partitioned_ml(machine: MachineSpec = KNC,
                   scale: float = 1.0) -> ExperimentTable:
    """A5: the paper's future-work extension — per-partition ML detection.

    Reproduces the rajat30 discussion of Section IV-C: the whole-matrix
    regularized benchmark misses the ML component of matrices whose
    dense rows dominate it; partition-level analysis recovers it, and
    the added prefetching yields "the additional performance boost".
    """
    from ..core import (
        AdaptiveSpMV,
        ExtendedProfileClassifier,
        PartitionedMLDetector,
        format_classes,
    )
    from ..matrices import load_suite

    detector = PartitionedMLDetector(machine)
    std = AdaptiveSpMV(machine, classifier="profile")
    ext = AdaptiveSpMV(
        machine, classifier=ExtendedProfileClassifier(machine)
    )
    table = ExperimentTable(
        experiment_id="ablation-partitioned-ml",
        title=(
            "Partitioned irregularity detection (paper future work) "
            f"on {machine.codename}"
        ),
        headers=("matrix", "global ML gain", "max part gain",
                 "ml nnz frac", "classes (std)", "classes (ext)",
                 "ext vs std"),
    )
    for spec, csr in load_suite(
        scale=scale, names=("rajat30", "ASIC_680k", "circuit5M", "consph")
    ):
        report = detector.analyze(csr)
        op_std = std.optimize(csr)
        op_ext = ext.optimize(csr)
        r_std = op_std.simulate()
        r_ext = op_ext.simulate()
        table.add(
            spec.name,
            float(report.whole_matrix_gain),
            float(report.max_gain),
            float(report.ml_nnz_fraction),
            format_classes(op_std.plan.classes),
            format_classes(op_ext.plan.classes),
            float(r_ext.gflops / r_std.gflops),
        )
    table.note(
        "expected: circuit matrices with dense rows gain a hidden ML "
        "class (and a speedup) from partitioned detection; regular "
        "matrices are unaffected"
    )
    return table


def bcsr_vs_delta(machine: MachineSpec = KNC,
                  scale: float = 1.0) -> ExperimentTable:
    """A6: register blocking (BCSR) vs delta compression for MB matrices.

    The plug-and-play extension in action: BCSR is registered as an
    alternative MB-class optimization. It wins on naturally blocked
    matrices (fill ~1: index traffic / r^2, dense tiles) and loses on
    pointwise patterns (fill-in inflates both traffic and compute) —
    which is why the paper's lightweight pool uses delta compression.
    """
    from ..kernels import baseline_kernel, pool_kernel

    runner = PipelineRunner(machine)
    base = baseline_kernel()
    table = ExperimentTable(
        experiment_id="ablation-bcsr",
        title=(
            f"BCSR vs delta compression on {machine.codename} "
            "(speedup over baseline; BCSR fill ratio)"
        ),
        headers=("matrix", "delta+vec", "bcsr 2x2", "fill"),
    )
    from ..matrices.generators import fem_like, random_uniform

    cases = (
        ("consph", named_matrix("consph", scale=scale)),
        ("fem-block2", fem_like(_scaled(60_000, scale), block=2,
                                neighbors=12, reach=30, seed=61)),
        ("fem-block4", fem_like(_scaled(60_000, scale), block=4,
                                neighbors=8, reach=20, seed=62)),
        ("pointwise", random_uniform(_scaled(60_000, scale),
                                     nnz_per_row=10.0, seed=63)),
    )
    delta = pool_kernel("compression")
    for name, csr in cases:
        r0 = runner.simulate(base, csr)
        rd = runner.simulate(delta, csr)
        bcsr = pool_kernel("bcsr")
        data = bcsr.preprocess(csr)
        rb = runner.simulate(bcsr, csr, data=data)
        table.add(
            name,
            float(rd.gflops / r0.gflops),
            float(rb.gflops / r0.gflops),
            float(data.fill_ratio),
        )
    table.note(
        "expected: bcsr wins at fill ~1 (block-structured), delta wins "
        "on pointwise patterns"
    )
    return table


def _scaled(base: int, scale: float, lo: int = 2_000) -> int:
    return max(int(base * scale), lo)


def format_landscape(machine: MachineSpec = KNC,
                     scale: float = 1.0) -> ExperimentTable:
    """A7: the format zoo across structural archetypes.

    Why the paper's pool is CSR-based: whole-format replacements (BCSR,
    SELL-C-sigma) each win only on the archetype they were designed for
    and lose badly elsewhere, whereas CSR + cheap per-bottleneck
    tweaks is robust. Speedups over the scalar CSR baseline.
    """
    from ..kernels import baseline_kernel, merged_pool_kernel, pool_kernel

    runner = PipelineRunner(machine)
    base = baseline_kernel()
    table = ExperimentTable(
        experiment_id="ablation-formats",
        title=(
            f"Format landscape on {machine.codename} "
            "(speedup over scalar CSR baseline)"
        ),
        headers=("matrix", "archetype", "csr+vec", "delta+vec",
                 "bcsr 2x2", "sell-8", "best"),
    )
    from ..matrices.generators import fem_like, power_law

    cases = (
        ("consph", "regular FEM", named_matrix("consph", scale=scale)),
        ("fem-block2", "blocked FEM",
         fem_like(_scaled(60_000, scale), block=2, neighbors=12,
                  reach=30, seed=71)),
        ("poisson3Db", "scattered", named_matrix("poisson3Db",
                                                 scale=scale)),
        ("powerlaw", "heavy-tailed",
         power_law(_scaled(80_000, scale), avg_deg=8.0, alpha=2.0,
                   seed=72)),
        ("webbase-1M", "short rows", named_matrix("webbase-1M",
                                                  scale=scale)),
    )
    from ..kernels import ConfiguredSpMV, SpMVConfig

    vec = ConfiguredSpMV(SpMVConfig(vectorize=True))
    for name, archetype, csr in cases:
        r0 = runner.simulate(base, csr)
        row = [name, archetype]
        results = {}
        for label, kernel in (
            ("csr+vec", vec),
            ("delta+vec", merged_pool_kernel(("compression",))),
            ("bcsr 2x2", pool_kernel("bcsr")),
            ("sell-8", pool_kernel("sell-c-sigma")),
        ):
            r = runner.simulate(kernel, csr, label=label)
            results[label] = r.gflops / r0.gflops
            row.append(float(results[label]))
        row.append(max(results, key=results.get))
        table.add(*row)
    table.note(
        "expected: no single format wins everywhere — the premise of "
        "both the paper's adaptivity and its CSR-based pool"
    )
    return table


def architecture_sensitivity(matrix_name: str = "poisson3Db",
                             scale: float = 1.0) -> ExperimentTable:
    """A8: counterfactual machines — where does the ML class come from?

    The paper's architecture-adaptivity claim, probed directly: starting
    from KNC, sweep the two latency-hiding parameters (miss latency and
    per-thread MLP) toward Broadwell-like values and watch the detected
    class set of a scattered matrix migrate from {ML} to bandwidth-bound
    — the same migration the paper observes between its platforms.
    """
    from ..core import classify_from_bounds, format_classes, measure_bounds

    csr = named_matrix(matrix_name, scale=scale)
    table = ExperimentTable(
        experiment_id="ablation-sensitivity",
        title=(
            f"Counterfactual-KNC sensitivity for {matrix_name}: "
            "miss latency and MLP vs detected classes"
        ),
        headers=("mem latency (ns)", "llc hit (ns)", "MLP",
                 "P_ML/P_CSR", "classes"),
    )
    sweep = (
        (310.0, 210.0, 1.6),    # stock KNC
        (310.0, 210.0, 6.0),    # KNC with OoO-grade MLP
        (150.0, 100.0, 1.6),    # KNC with multicore-grade latency
        (90.0, 35.0, 10.0),     # Broadwell-grade memory system
    )
    for latency, llc_lat, mlp in sweep:
        machine = KNC.with_(
            mem_latency_ns=latency, llc_hit_latency_ns=llc_lat, mlp=mlp
        )
        bounds = measure_bounds(csr, machine)
        table.add(
            float(latency), float(llc_lat), float(mlp),
            float(bounds.p_ml / bounds.p_csr),
            format_classes(classify_from_bounds(bounds)),
        )
    table.note(
        "expected: the ML headroom shrinks monotonically as the memory "
        "system approaches multicore characteristics — the class is a "
        "property of the (matrix, machine) pair, not the matrix alone"
    )
    return table


def tree_ablation(machine: MachineSpec = KNC, corpus_count: int = 80,
                  seed: int = 2017) -> ExperimentTable:
    """A4: tree depth and feature-set complexity vs accuracy."""
    table = ExperimentTable(
        experiment_id="ablation-tree",
        title=f"Decision-tree ablation on {machine.codename} (10-fold CV)",
        headers=("features", "max_depth", "exact (%)", "partial (%)"),
    )
    subsets = (
        ("O(1) only", O1_FEATURES),
        ("paper O(N)", PAPER_ON_SUBSET),
        ("paper O(NNZ)", PAPER_ONNZ_SUBSET),
    )
    for label, subset in subsets:
        X, Y, _ = corpus_features_and_labels(
            machine, train_count=corpus_count, seed=seed,
            feature_names=tuple(subset),
        )
        for depth in (2, 4, 12):
            res = k_fold(
                X, Y, k=min(10, corpus_count),
                tree_factory=lambda d=depth: DecisionTree(
                    max_depth=d, min_samples_leaf=2
                ),
            )
            table.add(label, depth, float(100 * res.exact_match),
                      float(100 * res.partial_match))
    table.note(
        "expected: accuracy saturates with depth; richer features help; "
        "O(1) features alone are not enough"
    )
    return table
