"""Batched-throughput benchmark: single-RHS SpMV vs multi-RHS SpMM.

Not a paper artifact: this driver tracks the *reproduction's own*
numeric throughput across kernel variants, measuring how much the
batched ``matmat`` plane gains over ``k`` sequential ``matvec`` calls
(the SpMM lever of Saule et al., arXiv:1302.1078). Results are written
to ``BENCH_kernels.json`` at the repo root so successive PRs leave a
perf trajectory; ``tests/perf`` smoke-runs the harness on tiny inputs
and validates the schema on every CI run.
"""

from __future__ import annotations

import json
import tracemalloc

import numpy as np

from ..formats import CSRMatrix
from ..kernels import baseline_kernel, merged_pool_kernel
from ..kernels.bcsr import BCSRSpMV
from ..kernels.sellcs import SellCSigmaSpMV
from ..memory import Workspace
from .common import ExperimentTable, PipelineRunner, geometric_mean

__all__ = [
    "run",
    "bench_kernels",
    "bench_parallel",
    "measure_steady_allocs",
    "BENCH_SCHEMA_KEYS",
    "ROW_SCHEMA_KEYS",
    "PARALLEL_ROW_SCHEMA_KEYS",
    "PARALLEL_THREADS",
]

#: Required top-level keys of ``BENCH_kernels.json``.
BENCH_SCHEMA_KEYS = frozenset(
    {"schema_version", "rhs", "repeats", "suite", "kernels",
     "geomean_speedup", "parallel", "cost_model"}
)
#: Required keys of every per-kernel measurement row.
ROW_SCHEMA_KEYS = frozenset(
    {"kernel", "matrix", "nrows", "nnz", "single_gflops",
     "batched_gflops", "speedup", "single_allocs",
     "single_steady_peak_bytes", "workspace_hit_rate",
     "predicted_gflops", "model_error_pct"}
)
#: Required keys of every measured-parallel row.
PARALLEL_ROW_SCHEMA_KEYS = frozenset(
    {"matrix", "schedule", "nthreads", "gflops", "wall_seconds",
     "imbalance", "wall_imbalance", "speedup",
     "predicted_gflops", "model_error_pct"}
)

#: Thread counts swept by the measured-parallel section.
PARALLEL_THREADS = (1, 2, 4, 8)

#: v2: single-RHS timings run through the zero-allocation ``out=`` /
#: ``workspace=`` plane and every row records the steady-state
#: allocation telemetry of one post-warmup apply.
#: v3: a ``parallel`` section with *measured* shared-memory runs —
#: per-thread CPU-time imbalance and wall makespan for every schedule
#: policy at threads in :data:`PARALLEL_THREADS`.
#: v4: every measurement row carries the cost model's prediction next
#: to the measurement (``predicted_gflops`` / ``model_error_pct``) and
#: the payload records which model predicted (``cost_model``); a
#: :class:`~repro.model.CalibratedModel` passed as ``model=`` also
#: accumulates the pairs for :meth:`~repro.model.CalibratedModel.
#: refine`.
SCHEMA_VERSION = 4


def measure_steady_allocs(fn, *, min_block_bytes: int = 4096) -> dict:
    """Allocation telemetry of one ``fn()`` call under ``tracemalloc``.

    Returns ``{"count": retained array-sized blocks, "peak_bytes":
    transient high-water mark over the pre-call level}``. ``count``
    sees blocks still alive after the call (reused workspace buffers
    never appear); ``peak_bytes`` also catches temporaries that were
    freed before returning, so a zero-allocation steady state shows
    ``count == 0`` *and* a peak well under one iteration vector.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        after = tracemalloc.take_snapshot()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    count = sum(
        1
        for stat in after.compare_to(before, "traceback")
        if stat.size_diff >= min_block_bytes
    )
    return {
        "count": int(count),
        "peak_bytes": int(max(peak - current, 0)),
    }


def _bench_matrices(scale: float) -> list[tuple[str, CSRMatrix]]:
    """The benchmark suite: one streaming-regular and one
    scattered-access matrix, sized (at scale 1.0) so that x far
    exceeds the last-level cache — the regime where batching pays."""
    from ..matrices.generators import banded, random_uniform

    n = max(int(64_000 * scale), 64)
    return [
        ("banded", banded(n, nnz_per_row=8, bandwidth=32, seed=5)),
        ("scattered", random_uniform(n, nnz_per_row=16.0, seed=6)),
    ]


def _bench_kernel_variants() -> list[tuple[str, object]]:
    return [
        ("csr", baseline_kernel()),
        ("csr+delta", merged_pool_kernel(("compression",))),
        ("csr+split", merged_pool_kernel(("decomposition",))),
        ("sell-8", SellCSigmaSpMV(chunk=8)),
        ("bcsr2x2", BCSRSpMV(block=2)),
    ]


def _default_model(nthreads=None):
    """The model v4 rows predict through when none is passed: the pure
    analytic simulator for the default platform."""
    from ..machine import KNL
    from ..model import AnalyticModel

    return AnalyticModel(KNL, nthreads)


def bench_parallel(
    *,
    threads: tuple[int, ...] = PARALLEL_THREADS,
    schedules: tuple[str, ...] | None = None,
    scale: float = 1.0,
    repeats: int = 3,
    matrices: list[tuple[str, CSRMatrix]] | None = None,
    engine_spec=None,
    model=None,
) -> list[dict]:
    """Measure real threaded SpMV for every schedule policy.

    Each row is one (matrix, schedule, nthreads) cell executed on the
    shared-memory pool through an engine stack
    (:func:`repro.engine.build_executor`): the best-of-``repeats`` wall
    time, its GFLOP/s, the measured per-thread CPU-time imbalance
    (work skew, robust to core oversubscription), the wall-clock
    imbalance, and the speedup over the same schedule at one thread.
    These are *measured* numbers, not cost-plane predictions — the
    imbalance column is the observed analogue of the model's P_IMB
    term.

    ``engine_spec`` (an :class:`~repro.engine.ExecutorSpec`) layers
    extra middleware — guard, supervision, a workspace arena — around
    each measured cell; its ``parallel`` axis is overridden by the
    (``schedule``, ``nthreads``) grid being swept.

    Since schema v4 every row also carries ``model``'s prediction for
    the same (schedule, nthreads) cell and the relative error against
    the measurement; if the model exposes ``observe`` (a
    :class:`~repro.model.CalibratedModel`), each predicted/measured
    pair is fed to its refinement buffer.
    """
    from dataclasses import replace

    from ..engine import ExecutorSpec, build_executor
    from ..kernels import baseline_kernel
    from ..model import prediction_error_pct
    from ..parallel import ParallelConfig
    from ..sched import SCHEDULE_POLICIES, make_partition

    base_spec = engine_spec if engine_spec is not None else ExecutorSpec()
    if schedules is None:
        schedules = tuple(SCHEDULE_POLICIES)
    if matrices is None:
        matrices = _bench_matrices(scale)
    if model is None:
        model = _default_model()
    base_kernel = baseline_kernel()
    rows: list[dict] = []
    for mat_name, csr in matrices:
        x = np.linspace(-1.0, 1.0, csr.ncols)
        flops = 2.0 * csr.nnz
        base_data = base_kernel.preprocess(csr)
        for schedule in schedules:
            base_wall = None
            for nthreads in threads:
                spec = replace(
                    base_spec,
                    parallel=ParallelConfig(nthreads=nthreads,
                                            schedule=schedule),
                    trace=False,
                )
                op = build_executor(csr, spec)
                out = np.empty(csr.nrows)
                op.apply(x, out=out)  # warm up pool + workspace
                best = None
                for _ in range(max(1, repeats)):
                    op.apply(x, out=out)
                    m = op.last_measurement
                    if m is not None and (
                        best is None
                        or m.wall_seconds < best.wall_seconds
                    ):
                        best = m
                if best is None:
                    # Every repeat degraded to the serial fallback
                    # (only possible with a supervised engine_spec
                    # under fault injection); nothing to measure.
                    continue
                if base_wall is None:
                    base_wall = best.wall_seconds
                predicted = model.run(
                    base_kernel, base_data,
                    make_partition(csr, nthreads, schedule),
                    nthreads=nthreads,
                )
                measured_gflops = flops / best.wall_seconds / 1e9
                observe = getattr(model, "observe", None)
                if observe is not None:
                    observe(base_kernel.name, predicted.seconds,
                            best.wall_seconds)
                rows.append({
                    "matrix": mat_name,
                    "schedule": schedule,
                    "nthreads": int(nthreads),
                    "gflops": measured_gflops,
                    "wall_seconds": best.wall_seconds,
                    "imbalance": best.imbalance,
                    "wall_imbalance": best.wall_imbalance,
                    "speedup": base_wall / best.wall_seconds,
                    "predicted_gflops": float(predicted.gflops),
                    "model_error_pct": prediction_error_pct(
                        predicted.gflops, measured_gflops
                    ),
                })
    return rows


def bench_kernels(
    *,
    rhs: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    matrices: list[tuple[str, CSRMatrix]] | None = None,
    kernels: list[tuple[str, object]] | None = None,
    threads: tuple[int, ...] = PARALLEL_THREADS,
    parallel_schedules: tuple[str, ...] | None = None,
    engine_spec=None,
    model=None,
) -> dict:
    """Measure single-RHS vs batched GFLOP/s for every kernel variant.

    For each (kernel, matrix) pair the single-RHS number times ``rhs``
    sequential ``apply`` calls and the batched number times one
    ``apply_multi`` over the same ``rhs`` vectors — identical flop
    counts, so the speedup column is a pure throughput ratio.

    Since schema v2 the single-RHS loop runs through the
    zero-allocation plane (caller-owned ``out=`` buffer plus a
    :class:`~repro.memory.Workspace` arena), and each row carries the
    steady-state telemetry: retained-allocation count and transient
    peak bytes of one post-warmup apply, and the arena's hit rate over
    the timed loop.

    Since schema v4 each row also records ``model``'s serial-rate
    prediction (``predicted_gflops``, at one thread — the single-RHS
    loop is serial) and its relative error against the measured
    single-RHS rate; the payload's ``cost_model`` field names the
    predicting model. Returns the ``BENCH_kernels.json`` payload.
    """
    from ..model import prediction_error_pct

    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    if matrices is None:
        matrices = _bench_matrices(scale)
    if kernels is None:
        kernels = _bench_kernel_variants()
    if model is None:
        model = _default_model()
    rng = np.random.default_rng(2017)
    runner = PipelineRunner()

    rows = []
    for mat_name, csr in matrices:
        X = rng.standard_normal((csr.ncols, rhs))
        flops = 2.0 * csr.nnz * rhs
        y = np.empty(csr.nrows)
        for kern_name, kernel in kernels:
            data = kernel.preprocess(csr)
            workspace = Workspace()
            # Warm up both planes (primes lazy layouts, plan caches
            # and the workspace arena).
            kernel.apply(data, X[:, 0], out=y, workspace=workspace)
            kernel.apply_multi(data, X[:, :1])

            allocs = measure_steady_allocs(
                lambda: kernel.apply(data, X[:, 0], out=y,
                                     workspace=workspace)
            )

            def single():
                for j in range(rhs):
                    kernel.apply(data, X[:, j], out=y,
                                 workspace=workspace)

            workspace.reset_stats()
            t_single = runner.time_seconds(
                single, repeats=repeats,
                label=f"single:{kern_name}:{mat_name}",
            )
            hit_rate = workspace.hit_rate
            t_batched = runner.time_seconds(
                lambda: kernel.apply_multi(data, X), repeats=repeats,
                label=f"batched:{kern_name}:{mat_name}",
            )
            single_gflops = flops / t_single / 1e9
            # Serial-rate prediction: the single-RHS loop runs one
            # thread, so predict at nthreads=1 and compare per-matvec
            # rates (identical flop accounting on both sides).
            predicted = model.run(kernel, data, nthreads=1)
            predicted_gflops = float(predicted.gflops)
            observe = getattr(model, "observe", None)
            if observe is not None:
                observe(kernel.name, predicted.seconds, t_single / rhs)
            rows.append({
                "kernel": kern_name,
                "matrix": mat_name,
                "nrows": csr.nrows,
                "nnz": csr.nnz,
                "single_gflops": single_gflops,
                "batched_gflops": flops / t_batched / 1e9,
                "speedup": t_single / t_batched,
                "single_allocs": allocs["count"],
                "single_steady_peak_bytes": allocs["peak_bytes"],
                "workspace_hit_rate": hit_rate,
                "predicted_gflops": predicted_gflops,
                "model_error_pct": prediction_error_pct(
                    predicted_gflops, single_gflops
                ),
            })

    return {
        "schema_version": SCHEMA_VERSION,
        "rhs": int(rhs),
        "repeats": int(repeats),
        "cost_model": model.signature(),
        "suite": [
            {"matrix": name, "nrows": csr.nrows, "nnz": csr.nnz}
            for name, csr in matrices
        ],
        "kernels": rows,
        "geomean_speedup": geometric_mean([r["speedup"] for r in rows]),
        "parallel": {
            "threads": [int(t) for t in threads],
            "engine_spec": (
                None if engine_spec is None else engine_spec.to_dict()
            ),
            "rows": bench_parallel(
                threads=threads, schedules=parallel_schedules,
                repeats=repeats, matrices=matrices,
                engine_spec=engine_spec, model=model,
            ),
        },
    }


def run(
    *,
    rhs: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    out_path: str | None = "BENCH_kernels.json",
    matrices: list[tuple[str, CSRMatrix]] | None = None,
    kernels: list[tuple[str, object]] | None = None,
    threads: tuple[int, ...] = PARALLEL_THREADS,
    parallel_schedules: tuple[str, ...] | None = None,
    engine_spec=None,
    model=None,
) -> ExperimentTable:
    """Run the batched-throughput benchmark and render it as a table.

    ``out_path`` (default ``BENCH_kernels.json`` in the current
    directory) receives the machine-readable payload; pass ``None`` to
    skip writing. ``engine_spec`` layers extra engine middleware around
    the measured-parallel section (see :func:`bench_parallel`);
    ``model`` selects the cost model behind the v4 prediction columns.
    """
    payload = bench_kernels(
        rhs=rhs, scale=scale, repeats=repeats,
        matrices=matrices, kernels=kernels,
        threads=threads, parallel_schedules=parallel_schedules,
        engine_spec=engine_spec, model=model,
    )
    table = ExperimentTable(
        experiment_id="bench-batched",
        title=f"single-RHS vs batched SpMV throughput ({rhs} RHS)",
        headers=("kernel", "matrix", "nrows", "nnz",
                 "single Gflop/s", "batched Gflop/s", "speedup",
                 "steady allocs", "ws hit rate"),
    )
    for r in payload["kernels"]:
        table.add(
            r["kernel"], r["matrix"], r["nrows"], r["nnz"],
            r["single_gflops"], r["batched_gflops"], r["speedup"],
            r["single_allocs"], r["workspace_hit_rate"],
        )
    table.note(
        f"geomean batched speedup {payload['geomean_speedup']:.2f}x "
        f"over {rhs} sequential matvecs (wall-clock, this host)"
    )
    errors = [
        r["model_error_pct"]
        for r in payload["kernels"] + payload["parallel"]["rows"]
        if np.isfinite(r["model_error_pct"])
    ]
    if errors:
        table.note(
            f"cost model [{payload['cost_model']}]: median prediction "
            f"error {float(np.median(errors)):.1f}% over "
            f"{len(errors)} cells"
        )
    par = payload["parallel"]
    tmax = max(par["threads"])
    for schedule in sorted({r["schedule"] for r in par["rows"]}):
        cells = [r for r in par["rows"]
                 if r["schedule"] == schedule and r["nthreads"] == tmax]
        if not cells:
            continue
        imb = geometric_mean([c["imbalance"] for c in cells])
        spd = geometric_mean([c["speedup"] for c in cells])
        table.note(
            f"measured parallel [{schedule}] @ {tmax} threads: "
            f"CPU-time imbalance {imb:.3f}, wall speedup {spd:.2f}x"
        )
    if out_path is not None:
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        table.note(f"wrote {out_path}")
    return table
