"""Batched-throughput benchmark: single-RHS SpMV vs multi-RHS SpMM.

Not a paper artifact: this driver tracks the *reproduction's own*
numeric throughput across kernel variants, measuring how much the
batched ``matmat`` plane gains over ``k`` sequential ``matvec`` calls
(the SpMM lever of Saule et al., arXiv:1302.1078). Results are written
to ``BENCH_kernels.json`` at the repo root so successive PRs leave a
perf trajectory; ``tests/perf`` smoke-runs the harness on tiny inputs
and validates the schema on every CI run.
"""

from __future__ import annotations

import json

import numpy as np

from ..formats import CSRMatrix
from ..kernels import baseline_kernel, merged_pool_kernel
from ..kernels.bcsr import BCSRSpMV
from ..kernels.sellcs import SellCSigmaSpMV
from .common import ExperimentTable, PipelineRunner, geometric_mean

__all__ = ["run", "bench_kernels", "BENCH_SCHEMA_KEYS", "ROW_SCHEMA_KEYS"]

#: Required top-level keys of ``BENCH_kernels.json``.
BENCH_SCHEMA_KEYS = frozenset(
    {"schema_version", "rhs", "repeats", "suite", "kernels",
     "geomean_speedup"}
)
#: Required keys of every per-kernel measurement row.
ROW_SCHEMA_KEYS = frozenset(
    {"kernel", "matrix", "nrows", "nnz", "single_gflops",
     "batched_gflops", "speedup"}
)

SCHEMA_VERSION = 1


def _bench_matrices(scale: float) -> list[tuple[str, CSRMatrix]]:
    """The benchmark suite: one streaming-regular and one
    scattered-access matrix, sized (at scale 1.0) so that x far
    exceeds the last-level cache — the regime where batching pays."""
    from ..matrices.generators import banded, random_uniform

    n = max(int(64_000 * scale), 64)
    return [
        ("banded", banded(n, nnz_per_row=8, bandwidth=32, seed=5)),
        ("scattered", random_uniform(n, nnz_per_row=16.0, seed=6)),
    ]


def _bench_kernel_variants() -> list[tuple[str, object]]:
    return [
        ("csr", baseline_kernel()),
        ("csr+delta", merged_pool_kernel(("compression",))),
        ("csr+split", merged_pool_kernel(("decomposition",))),
        ("sell-8", SellCSigmaSpMV(chunk=8)),
        ("bcsr2x2", BCSRSpMV(block=2)),
    ]


def bench_kernels(
    *,
    rhs: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    matrices: list[tuple[str, CSRMatrix]] | None = None,
    kernels: list[tuple[str, object]] | None = None,
) -> dict:
    """Measure single-RHS vs batched GFLOP/s for every kernel variant.

    For each (kernel, matrix) pair the single-RHS number times ``rhs``
    sequential ``apply`` calls and the batched number times one
    ``apply_multi`` over the same ``rhs`` vectors — identical flop
    counts, so the speedup column is a pure throughput ratio.
    Returns the ``BENCH_kernels.json`` payload as a dict.
    """
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    if matrices is None:
        matrices = _bench_matrices(scale)
    if kernels is None:
        kernels = _bench_kernel_variants()
    rng = np.random.default_rng(2017)
    runner = PipelineRunner()

    rows = []
    for mat_name, csr in matrices:
        X = rng.standard_normal((csr.ncols, rhs))
        flops = 2.0 * csr.nnz * rhs
        for kern_name, kernel in kernels:
            data = kernel.preprocess(csr)
            # Warm up both planes (primes lazy layouts and caches).
            kernel.apply(data, X[:, 0])
            kernel.apply_multi(data, X[:, :1])

            def single():
                for j in range(rhs):
                    kernel.apply(data, X[:, j])

            t_single = runner.time_seconds(
                single, repeats=repeats,
                label=f"single:{kern_name}:{mat_name}",
            )
            t_batched = runner.time_seconds(
                lambda: kernel.apply_multi(data, X), repeats=repeats,
                label=f"batched:{kern_name}:{mat_name}",
            )
            rows.append({
                "kernel": kern_name,
                "matrix": mat_name,
                "nrows": csr.nrows,
                "nnz": csr.nnz,
                "single_gflops": flops / t_single / 1e9,
                "batched_gflops": flops / t_batched / 1e9,
                "speedup": t_single / t_batched,
            })

    return {
        "schema_version": SCHEMA_VERSION,
        "rhs": int(rhs),
        "repeats": int(repeats),
        "suite": [
            {"matrix": name, "nrows": csr.nrows, "nnz": csr.nnz}
            for name, csr in matrices
        ],
        "kernels": rows,
        "geomean_speedup": geometric_mean([r["speedup"] for r in rows]),
    }


def run(
    *,
    rhs: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    out_path: str | None = "BENCH_kernels.json",
    matrices: list[tuple[str, CSRMatrix]] | None = None,
    kernels: list[tuple[str, object]] | None = None,
) -> ExperimentTable:
    """Run the batched-throughput benchmark and render it as a table.

    ``out_path`` (default ``BENCH_kernels.json`` in the current
    directory) receives the machine-readable payload; pass ``None`` to
    skip writing.
    """
    payload = bench_kernels(
        rhs=rhs, scale=scale, repeats=repeats,
        matrices=matrices, kernels=kernels,
    )
    table = ExperimentTable(
        experiment_id="bench-batched",
        title=f"single-RHS vs batched SpMV throughput ({rhs} RHS)",
        headers=("kernel", "matrix", "nrows", "nnz",
                 "single Gflop/s", "batched Gflop/s", "speedup"),
    )
    for r in payload["kernels"]:
        table.add(
            r["kernel"], r["matrix"], r["nrows"], r["nnz"],
            r["single_gflops"], r["batched_gflops"], r["speedup"],
        )
    table.note(
        f"geomean batched speedup {payload['geomean_speedup']:.2f}x "
        f"over {rhs} sequential matvecs (wall-clock, this host)"
    )
    if out_path is not None:
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        table.note(f"wrote {out_path}")
    return table
