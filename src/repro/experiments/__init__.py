"""Experiment drivers (system S10): one module per paper artifact.

================  ============================================
module             paper artifact
================  ============================================
``fig1``           Fig. 1  (single-optimization speedups, KNC)
``fig4``           Fig. 4  (per-class bounds landscape, KNC)
``fig5``           Fig. 5  (threshold grid search)
``fig7``           Fig. 7  (a: KNC, b: KNL, c: Broadwell)
``table2``         Table II (features & extraction scaling)
``table3``         Table III (platforms & STREAM)
``table4``         Table IV (classifier LOO accuracy)
``table5``         Table V (amortization iterations, KNL)
``ablations``      A1-A6 ablations (incl. the A5/A6 extensions)
``report``         full markdown reproduction report
``bench_batched``  single-RHS vs batched SpMM throughput (not a
                   paper artifact; perf-regression tracking)
================  ============================================
"""

from . import (
    ablations,
    bench_batched,
    fig1,
    fig4,
    fig5,
    fig7,
    report,
    table2,
    table3,
    table4,
    table5,
)
from .common import ExperimentTable, geometric_mean, render_table, trained_feature_classifier

__all__ = [
    "fig1",
    "fig4",
    "fig5",
    "fig7",
    "table2",
    "table3",
    "table4",
    "table5",
    "ablations",
    "report",
    "bench_batched",
    "ExperimentTable",
    "render_table",
    "geometric_mean",
    "trained_feature_classifier",
]
