"""Experiment E3 — paper Fig. 5 / Section III-C threshold tuning.

The profile-guided classifier's hyperparameters (T_ML, T_IMB) were
"optimized through exhaustive grid search" maximizing the average gain
of the selected optimizations. This driver reruns that grid search on
a corpus and reports the surface, so the sensitivity of the thresholds
(and how close the paper's 1.25/1.24 lands to our optimum) is visible.
"""

from __future__ import annotations

from ..core import tune_profile_thresholds
from ..machine import KNC, MachineSpec
from ..matrices import training_suite
from .common import ExperimentTable

__all__ = ["run"]


def run(
    machine: MachineSpec = KNC,
    corpus_count: int = 60,
    seed: int = 2017,
    t_ml_grid: tuple[float, ...] = (1.05, 1.15, 1.25, 1.4, 1.6),
    t_imb_grid: tuple[float, ...] = (1.04, 1.14, 1.24, 1.4, 1.6),
) -> ExperimentTable:
    """Rerun the threshold grid search on ``machine``."""
    corpus = [
        t.matrix for t in training_suite(count=corpus_count, seed=seed)
    ]
    result = tune_profile_thresholds(
        corpus, machine, t_ml_grid=t_ml_grid, t_imb_grid=t_imb_grid
    )
    table = ExperimentTable(
        experiment_id="fig5-gridsearch",
        title=(
            f"Threshold grid search on {machine.codename} "
            f"({corpus_count} matrices; geometric-mean gain over baseline)"
        ),
        headers=("T_ML", "T_IMB", "T_MB", "mean gain", "classified"),
    )
    for p in result.points:
        table.add(
            float(p.thresholds.t_ml),
            float(p.thresholds.t_imb),
            float(p.thresholds.t_mb),
            float(p.mean_speedup),
            p.n_classified,
        )
    best = result.best.thresholds
    table.note(
        f"best: T_ML={best.t_ml}, T_IMB={best.t_imb} "
        "(paper's grid search landed on 1.25/1.24)"
    )
    return table
