"""Experiment E6 — paper Table IV.

Leave-One-Out accuracy of the feature-guided Decision Tree classifier
on the training corpus labeled by the profile-guided classifier, for
the paper's two feature subsets: the O(N) subset (paper: 80% exact /
95% partial) and the O(NNZ) subset (paper: 84% / 100%).
"""

from __future__ import annotations

import numpy as np

from ..core import ProfileGuidedClassifier, classes_to_labels
from ..machine import KNC, MachineSpec
from ..matrices import PAPER_ON_SUBSET, PAPER_ONNZ_SUBSET, training_suite
from ..matrices.features import extract_features
from ..ml import DecisionTree, leave_one_out
from .common import ExperimentTable

__all__ = ["run", "corpus_features_and_labels"]


def corpus_features_and_labels(
    machine: MachineSpec,
    train_count: int = 210,
    seed: int = 2017,
    feature_names: tuple[str, ...] | None = None,
):
    """Features (full Table II set unless restricted) + profile labels."""
    from ..matrices.features import FEATURE_NAMES

    names = feature_names or FEATURE_NAMES
    corpus = training_suite(count=train_count, seed=seed)
    labeler = ProfileGuidedClassifier(machine)
    X = np.array(
        [
            extract_features(
                t.matrix,
                llc_bytes=machine.llc_bytes,
                line_elems=machine.line_elems,
            ).as_array(names)
            for t in corpus
        ]
    )
    Y = np.array(
        [classes_to_labels(labeler.classify(t.matrix)) for t in corpus]
    )
    return X, Y, names


def run(machine: MachineSpec = KNC, train_count: int = 210,
        seed: int = 2017) -> ExperimentTable:
    """Regenerate Table IV on ``machine`` (paper reports KNC)."""
    table = ExperimentTable(
        experiment_id="table4",
        title=(
            f"Feature-guided classifier LOO accuracy on {machine.codename} "
            f"({train_count} matrices)"
        ),
        headers=("feature set", "complexity", "exact (%)", "partial (%)"),
    )

    def tree_factory() -> DecisionTree:
        return DecisionTree(max_depth=12, min_samples_leaf=2)

    for label, subset, complexity in (
        ("paper O(N) subset", PAPER_ON_SUBSET, "O(N)"),
        ("paper O(NNZ) subset", PAPER_ONNZ_SUBSET, "O(NNZ)"),
    ):
        X, Y, _ = corpus_features_and_labels(
            machine, train_count=train_count, seed=seed,
            feature_names=tuple(subset),
        )
        res = leave_one_out(X, Y, tree_factory)
        table.add(
            label, complexity,
            float(100.0 * res.exact_match),
            float(100.0 * res.partial_match),
        )

    table.note("paper (KNC): O(N) 80/95, O(NNZ) 84/100")
    return table
