"""Experiment E4 — paper Table II.

The feature definitions with their extraction complexity classes, plus
a measured scaling check: extraction wall-time of the O(1)/O(N)/O(NNZ)
feature groups across matrix sizes must scale with the advertised
complexity (this is the one experiment where *real* wall-clock is the
observable, since feature extraction is genuinely executed here, not
simulated).
"""

from __future__ import annotations

from ..matrices import FEATURE_COMPLEXITY, FEATURE_NAMES
from ..matrices.features import extract_features
from ..matrices.generators import random_uniform
from .common import ExperimentTable, PipelineRunner

__all__ = ["run", "extraction_scaling"]


def run() -> ExperimentTable:
    """Regenerate Table II (feature inventory)."""
    table = ExperimentTable(
        experiment_id="table2",
        title="Sparse matrix features used for classification",
        headers=("feature", "complexity"),
    )
    for name in FEATURE_NAMES:
        table.add(name, FEATURE_COMPLEXITY[name])
    return table


def extraction_scaling(
    sizes: tuple[int, ...] = (20_000, 40_000, 80_000),
    nnz_per_row: float = 16.0,
    repeats: int = 3,
) -> ExperimentTable:
    """Measure full-feature extraction time across matrix sizes.

    The paper's point is that all features are extractable in at most
    one pass over the nonzeros; the measured times should grow at most
    linearly in NNZ.
    """
    table = ExperimentTable(
        experiment_id="table2-scaling",
        title="Feature extraction wall time vs matrix size",
        headers=("rows", "nnz", "seconds"),
    )
    runner = PipelineRunner()
    times = []
    for n in sizes:
        csr = random_uniform(n, nnz_per_row=nnz_per_row, seed=7)
        best = runner.time_seconds(
            lambda: extract_features(csr), repeats=repeats,
            reduce="min", label=f"extract:{n}",
        )
        times.append(best)
        table.add(n, csr.nnz, float(best))
    # Linear-scaling note: time ratio should not exceed ~2x the size ratio.
    ratio = times[-1] / max(times[0], 1e-12)
    size_ratio = sizes[-1] / sizes[0]
    table.note(
        f"time ratio {ratio:.1f}x over a {size_ratio:.1f}x size span "
        "(at most linear in NNZ)"
    )
    return table
