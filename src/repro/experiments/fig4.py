"""Experiment E2 — paper Fig. 4.

Baseline CSR performance and the per-class upper bounds (P_MB, P_ML,
P_IMB, P_CMP, P_peak) on KNC for the named suite, exposing per-matrix
bottleneck diversity.
"""

from __future__ import annotations

from ..core import classify_from_bounds, format_classes, measure_bounds
from ..machine import KNC, MachineSpec
from ..matrices import load_suite
from .common import ExperimentTable

__all__ = ["run"]


def run(machine: MachineSpec = KNC, scale: float = 1.0,
        names: tuple[str, ...] | None = None) -> ExperimentTable:
    """Regenerate Fig. 4 (bounds landscape) on ``machine``."""
    table = ExperimentTable(
        experiment_id="fig4",
        title=f"CSR baseline vs per-class bounds on {machine.codename} (Gflop/s)",
        headers=(
            "matrix", "P_CSR", "P_MB", "P_ML", "P_IMB", "P_CMP", "P_peak",
            "classes",
        ),
    )
    for spec, csr in load_suite(scale=scale, names=names):
        b = measure_bounds(csr, machine)
        table.add(
            spec.name,
            float(b.p_csr), float(b.p_mb), float(b.p_ml),
            float(b.p_imb), float(b.p_cmp), float(b.p_peak),
            format_classes(classify_from_bounds(b)),
        )
    distinct = len(set(table.column("classes")))
    table.note(
        f"{distinct} distinct class sets across the suite "
        "(bottleneck diversity, the premise of Section III)"
    )
    return table
