"""Shared infrastructure for the experiment drivers.

Each driver in this package regenerates one paper artifact (table or
figure) as structured rows plus a rendered text table, so the same code
backs the pytest-benchmark harness, the CLI, and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core import FeatureGuidedClassifier
from ..machine import MachineSpec
from ..matrices import training_suite
from ..pipeline import PipelineRunner

__all__ = [
    "render_table",
    "geometric_mean",
    "ExperimentTable",
    "PipelineRunner",
    "trained_feature_classifier",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the right average for speedup ratios."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table."""
    headers = [str(h) for h in headers]
    str_rows = [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows
        else len(headers[j])
        for j in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentTable:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_text(self) -> str:
        out = [f"== {self.experiment_id}: {self.title} ==",
               render_table(self.headers, self.rows)]
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)

    def column(self, name: str) -> list:
        j = self.headers.index(name)
        return [r[j] for r in self.rows]


_CLASSIFIER_CACHE: dict[tuple[str, int, int], FeatureGuidedClassifier] = {}


def trained_feature_classifier(
    machine: MachineSpec,
    train_count: int = 210,
    seed: int = 2017,
    **classifier_kwargs,
) -> FeatureGuidedClassifier:
    """Train (and memoize) the feature-guided classifier for a platform.

    Training means: build the seeded corpus, label it with the
    profile-guided classifier on ``machine``, fit the CART tree — the
    paper's offline stage. Memoized per (platform, corpus) because
    several experiments share the same classifier.
    """
    key = (machine.codename, train_count, seed)
    if key not in _CLASSIFIER_CACHE and not classifier_kwargs:
        corpus = [t.matrix for t in training_suite(count=train_count, seed=seed)]
        clf = FeatureGuidedClassifier(machine)
        clf.fit_from_matrices(corpus)
        _CLASSIFIER_CACHE[key] = clf
    elif classifier_kwargs:
        corpus = [t.matrix for t in training_suite(count=train_count, seed=seed)]
        clf = FeatureGuidedClassifier(machine, **classifier_kwargs)
        clf.fit_from_matrices(corpus)
        return clf
    return _CLASSIFIER_CACHE[key]
