"""Experiments E7-E9 — paper Fig. 7 (a: KNC, b: KNL, c: Broadwell).

The full SpMV performance landscape per platform: MKL CSR, MKL
Inspector-Executor (not on KNC), our baseline CSR, the feature-guided
and profile-guided optimizers, and the oracle — plus the detected
classes per matrix and the average speedups over MKL CSR the paper
headlines (KNC 2.72x/2.63x, KNL 6.73x/6.48x with I-E at 4.89x,
Broadwell 2.02x/1.86x with I-E at 1.49x).
"""

from __future__ import annotations

from ..baselines import InspectorExecutor, mkl_csr_kernel
from ..core import AdaptiveSpMV, format_classes, oracle_search
from ..kernels import baseline_kernel
from ..machine import MachineSpec, get_platform
from ..matrices import load_suite
from .common import (
    ExperimentTable,
    PipelineRunner,
    geometric_mean,
    trained_feature_classifier,
)

__all__ = ["run"]


def run(
    platform: str | MachineSpec,
    scale: float = 1.0,
    names: tuple[str, ...] | None = None,
    train_count: int = 210,
    include_oracle: bool = True,
) -> ExperimentTable:
    """Regenerate one Fig. 7 panel."""
    machine = (
        get_platform(platform) if isinstance(platform, str) else platform
    )
    runner = PipelineRunner(machine)
    mkl = mkl_csr_kernel()
    base = baseline_kernel()
    has_ie = machine.codename != "knc"
    ie = InspectorExecutor(machine) if has_ie else None

    feat_clf = trained_feature_classifier(machine, train_count=train_count)
    prof_opt = AdaptiveSpMV(machine, classifier="profile")
    feat_opt = AdaptiveSpMV(machine, classifier=feat_clf)

    headers = ["matrix", "MKL"]
    if has_ie:
        headers.append("MKL I-E")
    headers += ["baseline", "feat", "prof"]
    if include_oracle:
        headers.append("oracle")
    headers += ["classes(prof)", "classes(feat)"]

    table = ExperimentTable(
        experiment_id=f"fig7-{machine.codename}",
        title=f"SpMV performance landscape on {machine.codename} (Gflop/s)",
        headers=tuple(headers),
    )

    speedups = {"feat": [], "prof": [], "ie": []}
    for spec, csr in load_suite(scale=scale, names=names):
        r_mkl = runner.simulate(mkl, csr)
        row: list = [spec.name, float(r_mkl.gflops)]
        if has_ie:
            r_ie = ie.optimize(csr).result
            row.append(float(r_ie.gflops))
            speedups["ie"].append(r_ie.gflops / r_mkl.gflops)
        r_base = runner.simulate(base, csr)
        row.append(float(r_base.gflops))

        op_f = feat_opt.optimize(csr)
        r_f = op_f.simulate()
        row.append(float(r_f.gflops))
        speedups["feat"].append(r_f.gflops / r_mkl.gflops)

        op_p = prof_opt.optimize(csr)
        r_p = op_p.simulate()
        row.append(float(r_p.gflops))
        speedups["prof"].append(r_p.gflops / r_mkl.gflops)

        if include_oracle:
            row.append(float(oracle_search(csr, machine).gflops))
        row.append(format_classes(op_p.plan.classes))
        row.append(format_classes(op_f.plan.classes))
        table.add(*row)

    table.note(
        f"average speedup over MKL CSR: prof {geometric_mean(speedups['prof']):.2f}x, "
        f"feat {geometric_mean(speedups['feat']):.2f}x"
        + (
            f", MKL I-E {geometric_mean(speedups['ie']):.2f}x"
            if has_ie else " (Inspector-Executor not available on KNC)"
        )
    )
    prof_col = table.column("classes(prof)")
    feat_col = table.column("classes(feat)")
    agree = sum(p == f for p, f in zip(prof_col, feat_col))
    table.note(
        f"classifier agreement on the suite: {agree}/{len(prof_col)} "
        "exact class-set matches (profile vs feature)"
    )
    paper = {
        "knc": "paper: prof 2.72x, feat 2.63x over MKL CSR",
        "knl": "paper: prof 6.73x, feat 6.48x, I-E 4.89x over MKL CSR",
        "broadwell": "paper: prof 2.02x, feat 1.86x, I-E 1.49x over MKL CSR",
    }
    table.note(paper[machine.codename])
    return table
