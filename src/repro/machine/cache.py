"""Cache-behavior model for the irregular x-vector access stream.

SpMV's only hard-to-predict memory traffic is the gather from the
right-hand-side vector ``x`` through ``colind``. This module estimates,
per row,

* how many accesses *can* miss — the paper's naive per-row criterion
  (the column distance to the in-row predecessor exceeds the elements
  per cache line), plus the row's first access, which starts a new
  stream;
* how many of those are hidden by hardware stride prefetchers (modest
  forward strides only — the paper notes irregular accesses "cannot be
  detected by hardware prefetching mechanisms");
* where the surviving misses are served from, using a two-level
  residency model:

  - *local residency*: the slice of x a thread reuses must fit in its
    core's private-cache share, otherwise accesses leave the core and
    pay remote-L2/L3 latency (very expensive on the Phi ring);
  - *aggregate residency*: if the x working set fits the LLC as a
    whole, DRAM traffic and full-miss latency are avoided.

The measurements the paper takes are *warm-cache* (128 back-to-back
SpMVs), so residency is a steady-state fraction, not a cold-start one.

Per-matrix derived arrays are memoized via :class:`weakref.WeakKeyDictionary`
so repeated engine runs on the same matrix (bounds, oracle sweeps, ...)
do not recompute them.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..formats import CSRMatrix
from .spec import MachineSpec

__all__ = ["XAccessStats", "XAccessCost", "x_access_stats", "x_access_cost",
           "clear_cache"]

#: Fraction of a cache level realistically available to hold ``x`` while
#: the matrix arrays stream through and continuously evict.
_X_CACHE_SHARE = 0.5

#: Forward strides up to this many cache lines are considered trackable
#: by hardware stride prefetchers.
_PREFETCHABLE_LINES = 8

_STATS_CACHE: "weakref.WeakKeyDictionary[CSRMatrix, dict]" = (
    weakref.WeakKeyDictionary()
)


@dataclass(frozen=True)
class XAccessStats:
    """Machine-independent access-pattern statistics of one matrix."""

    potential_misses: np.ndarray    # per row, incl. the row-start access
    strided_potential: np.ndarray   # subset with hw-prefetchable strides
    unique_x_lines: int             # distinct x cache lines touched


@dataclass(frozen=True)
class XAccessCost:
    """Machine-dependent x-access cost of one matrix.

    ``latency_ns_per_row`` is total exposed miss latency per row before
    dividing by the achievable memory-level parallelism (the engine
    applies MLP, which is what software prefetching improves).
    ``dram_bytes_per_row`` is the x-induced DRAM line traffic.
    """

    latency_ns_per_row: np.ndarray
    dram_bytes_per_row: np.ndarray
    local_residency: float
    llc_residency: float


def _compute_stats(csr: CSRMatrix, line_elems: int) -> XAccessStats:
    if csr.nnz == 0:
        zero = np.zeros(csr.nrows, dtype=np.float64)
        return XAccessStats(zero, zero.copy(), 0)

    gaps = csr.column_gaps()
    row_start = np.zeros(csr.nnz, dtype=bool)
    starts = csr.rowptr[:-1]
    starts = starts[starts < csr.nnz]
    row_start[starts] = True

    # A row's first access continues the stream of the previous row's
    # first access: in banded matrices consecutive rows start on nearly
    # the same column, so the line is already resident. Replace the
    # row-start gap (0 by construction) with the inter-row start
    # distance so the same miss criterion applies to it.
    first_cols = csr.colind[starts].astype(np.int64)
    inter_row = np.abs(np.diff(first_cols, prepend=first_cols[:1] - 10**9))
    gaps = gaps.copy()
    gaps[starts] = inter_row

    may_miss = gaps > line_elems
    strided = may_miss & (gaps <= _PREFETCHABLE_LINES * line_elems)

    potential = _row_sums(may_miss.astype(np.float64), csr.rowptr)
    strided_pot = _row_sums(strided.astype(np.float64), csr.rowptr)
    unique_lines = int(
        np.unique(csr.colind.astype(np.int64) // line_elems).size
    )
    return XAccessStats(potential, strided_pot, unique_lines)


def x_access_stats(csr: CSRMatrix, line_elems: int = 8) -> XAccessStats:
    """Memoized access-pattern statistics for ``csr``."""
    per_matrix = _STATS_CACHE.setdefault(csr, {})
    if line_elems not in per_matrix:
        per_matrix[line_elems] = _compute_stats(csr, line_elems)
    return per_matrix[line_elems]


def clear_cache() -> None:
    """Drop all memoized per-matrix statistics (mainly for tests)."""
    _STATS_CACHE.clear()


def x_working_set_bytes(csr: CSRMatrix, machine: MachineSpec) -> int:
    """Bytes of distinct x cache lines the matrix touches."""
    stats = x_access_stats(csr, machine.line_elems)
    return stats.unique_x_lines * machine.line_bytes


def residency_fractions(csr: CSRMatrix, machine: MachineSpec) -> tuple[float, float]:
    """(local, aggregate-LLC) steady-state residency fractions of x."""
    x_ws = x_working_set_bytes(csr, machine)
    if x_ws == 0:
        return 1.0, 1.0
    local_cap = _X_CACHE_SHARE * machine.l2_bytes_per_core
    llc_cap = _X_CACHE_SHARE * machine.llc_bytes
    local = float(min(1.0, local_cap / x_ws))
    llc = float(min(1.0, max(llc_cap / x_ws, local)))
    return local, llc


def x_access_cost(
    csr: CSRMatrix,
    machine: MachineSpec,
    *,
    software_prefetch: bool = False,
) -> XAccessCost:
    """Estimate per-row x-access latency exposure and DRAM traffic."""
    stats = x_access_stats(csr, machine.line_elems)
    local, llc = residency_fractions(csr, machine)

    potential = stats.potential_misses
    strided = stats.strided_potential
    random_part = potential - strided

    # Hardware prefetchers hide trackable strided misses.
    visible = random_part + strided * (1.0 - machine.hw_prefetch_eff)

    # Misses that leave the core: a fraction `llc - local` of them is
    # served by a remote L2 / the L3, the rest (1 - llc) go to DRAM.
    leaving = visible * (1.0 - local)
    if local < 1.0:
        remote_frac = min(max((llc - local) / (1.0 - local), 0.0), 1.0)
    else:
        remote_frac = 1.0
    latency_ns = leaving * (
        remote_frac * machine.llc_hit_latency_ns
        + (1.0 - remote_frac) * machine.mem_latency_ns
    )

    # DRAM line traffic: only the non-LLC-resident share of potential
    # re-fetches. Prefetched lines still consume bandwidth, so the
    # hardware-prefetch reduction does NOT apply to traffic; software
    # prefetch slightly inflates it with useless fetches.
    dram_bytes = potential * (1.0 - llc) * machine.line_bytes
    if software_prefetch:
        dram_bytes = dram_bytes * 1.05

    return XAccessCost(
        latency_ns_per_row=latency_ns,
        dram_bytes_per_row=dram_bytes,
        local_residency=local,
        llc_residency=llc,
    )


def stream_cost(cols, ncols: int, machine: MachineSpec) -> dict:
    """Latency/traffic of an arbitrary x gather stream (column order
    as issued). Used by kernels whose access order is not row-major
    CSR (e.g. SELL-C-sigma's chunk-column-major stream).

    Returns ``{"latency_ns": float, "dram_bytes": float}`` totals.
    """
    cols = np.asarray(cols, dtype=np.int64)
    if cols.size == 0:
        return {"latency_ns": 0.0, "dram_bytes": 0.0}
    line = machine.line_elems
    gaps = np.abs(np.diff(cols, prepend=cols[:1] - 10**9))
    may_miss = gaps > line
    strided = may_miss & (gaps <= _PREFETCHABLE_LINES * line)
    potential = float(np.count_nonzero(may_miss))
    strided_n = float(np.count_nonzero(strided))

    unique_lines = int(np.unique(cols // line).size)
    x_ws = unique_lines * machine.line_bytes
    local_cap = _X_CACHE_SHARE * machine.l2_bytes_per_core
    llc_cap = _X_CACHE_SHARE * machine.llc_bytes
    local = min(1.0, local_cap / max(x_ws, 1))
    llc = min(1.0, max(llc_cap / max(x_ws, 1), local))

    visible = (potential - strided_n) + strided_n * (
        1.0 - machine.hw_prefetch_eff
    )
    leaving = visible * (1.0 - local)
    remote_frac = (
        min(max((llc - local) / (1.0 - local), 0.0), 1.0)
        if local < 1.0 else 1.0
    )
    latency_ns = leaving * (
        remote_frac * machine.llc_hit_latency_ns
        + (1.0 - remote_frac) * machine.mem_latency_ns
    )
    dram_bytes = potential * (1.0 - llc) * machine.line_bytes
    return {"latency_ns": float(latency_ns), "dram_bytes": float(dram_bytes)}


def _row_sums(per_nnz: np.ndarray, rowptr: np.ndarray) -> np.ndarray:
    out = np.zeros(rowptr.size - 1, dtype=np.float64)
    if per_nnz.size == 0:
        return out
    lengths = np.diff(rowptr)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(per_nnz, rowptr[nonempty])
    return out
