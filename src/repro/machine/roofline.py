"""Roofline model utilities (Williams et al., cited in paper §II).

The paper frames SpMV's behaviour with the Roofline model: kernels with
operational intensity below the machine's *ridge point* are memory
bound; the CMP class is defined partly as matrices "pushed closer to
the ridge point". These helpers compute attainable performance,
classify which roof a simulated run sits under, and quantify roof
utilization — used by the examples and by diagnostics on
:class:`~repro.machine.engine.RunResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import RunResult
from .spec import MachineSpec

__all__ = ["RooflinePoint", "peak_gflops", "ridge_point",
           "attainable_gflops", "roofline_point"]

#: Fraction of theoretical SIMD-FMA peak sustainable on real kernels
#: (issue limits, no perfect FMA balance).
_PEAK_EFFICIENCY = 0.8


def peak_gflops(machine: MachineSpec) -> float:
    """Sustainable compute roof: cores x freq x SIMD x 2 (FMA), derated."""
    return (
        machine.cores
        * machine.freq_ghz
        * machine.simd_doubles
        * 2.0
        * _PEAK_EFFICIENCY
    )


def ridge_point(machine: MachineSpec, ws_bytes: float | None = None) -> float:
    """Operational intensity (flop/byte) where the roofs intersect."""
    bw = (
        machine.bw_main_gbs
        if ws_bytes is None
        else machine.bandwidth_for_working_set(ws_bytes) / 1e9
    )
    return peak_gflops(machine) / bw


def attainable_gflops(machine: MachineSpec, intensity: float,
                      ws_bytes: float | None = None) -> float:
    """min(compute roof, intensity x bandwidth roof)."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    bw = (
        machine.bw_main_gbs * 1e9
        if ws_bytes is None
        else machine.bandwidth_for_working_set(ws_bytes)
    )
    return min(peak_gflops(machine), intensity * bw / 1e9)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel execution placed on the machine's roofline."""

    intensity: float            # flops per byte moved
    achieved_gflops: float
    attainable_gflops: float
    bound: str                  # "memory" or "compute"

    @property
    def roof_utilization(self) -> float:
        """Achieved / attainable (1.0 = on the roof)."""
        return self.achieved_gflops / self.attainable_gflops


def roofline_point(result: RunResult, machine: MachineSpec,
                   ws_bytes: float | None = None) -> RooflinePoint:
    """Place a simulated run on the roofline."""
    if result.total_bytes <= 0:
        raise ValueError("run moved no bytes; intensity undefined")
    intensity = result.flops / result.total_bytes
    attainable = attainable_gflops(machine, intensity, ws_bytes)
    ridge = ridge_point(machine, ws_bytes)
    return RooflinePoint(
        intensity=intensity,
        achieved_gflops=result.gflops,
        attainable_gflops=attainable,
        bound="memory" if intensity < ridge else "compute",
    )
