"""STREAM-triad calibration microbenchmark (paper Table III rows).

The paper characterizes each platform by its STREAM triad bandwidth for
main memory and for LLC-resident working sets. In this reproduction the
spec values *are* the calibration source, so the simulated triad must
recover them — :func:`stream_triad` runs the triad through the same
bandwidth/overhead model the SpMV kernels use, making Table III a
regression test of the engine rather than a tautology: launch overheads
and the LLC ramp must not distort the plateau values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import MachineSpec

__all__ = ["TriadResult", "stream_triad", "stream_table"]


@dataclass(frozen=True)
class TriadResult:
    """One simulated STREAM triad measurement."""

    machine_codename: str
    array_elems: int
    working_set_bytes: int
    seconds: float
    bandwidth_gbs: float


def stream_triad(machine: MachineSpec, array_elems: int,
                 nthreads: int | None = None,
                 include_launch_overhead: bool = True) -> TriadResult:
    """Simulate ``a[i] = b[i] + s * c[i]`` over float64 arrays.

    Traffic counts 4 lines per element-triple (read b, read c, write-
    allocate + write-back a), the STREAM convention that matches the
    paper's triad numbers. The STREAM benchmark amortizes its timed
    loop over many iterations without per-iteration barriers; pass
    ``include_launch_overhead=False`` to reproduce that protocol (used
    for the Table III plateau values), or leave it on to model a single
    cold launch.
    """
    if array_elems < 1:
        raise ValueError("array_elems must be >= 1")
    T = machine.total_threads if nthreads is None else int(nthreads)
    ws = 3 * 8 * array_elems
    bytes_moved = 4 * 8 * array_elems
    bw = machine.bandwidth_for_working_set(ws)
    seconds = bytes_moved / bw
    if include_launch_overhead:
        seconds += machine.parallel_overhead_seconds(T)
    return TriadResult(
        machine_codename=machine.codename,
        array_elems=array_elems,
        working_set_bytes=ws,
        seconds=seconds,
        bandwidth_gbs=bytes_moved / seconds / 1e9,
    )


def stream_table(machine: MachineSpec) -> dict[str, float]:
    """Reproduce the Table III 'STREAM triad main/llc' pair (GB/s).

    The main-memory point uses arrays 8x the LLC; the LLC point uses
    arrays filling 30% of the LLC (comfortably resident).
    """
    llc = machine.llc_bytes
    main_elems = int(8 * llc / (3 * 8))
    llc_elems = max(int(0.3 * llc / (3 * 8)), 1)
    return {
        "main_gbs": stream_triad(
            machine, main_elems, include_launch_overhead=False
        ).bandwidth_gbs,
        "llc_gbs": stream_triad(
            machine, llc_elems, include_launch_overhead=False
        ).bandwidth_gbs,
    }
