"""Simulated hardware platforms (system S3 in DESIGN.md).

The substitute substrate for the paper's KNC/KNL/Broadwell testbeds:
an analytical, calibrated multithreaded performance model. See
DESIGN.md Section 2 for why this preserves the behaviour the paper's
optimizer depends on.
"""

from .cache import (
    XAccessCost,
    XAccessStats,
    clear_cache,
    residency_fractions,
    x_access_cost,
    x_access_stats,
    x_working_set_bytes,
)
from .engine import CostedKernel, ExecutionEngine, KernelCost, RunResult
from .platforms import BROADWELL, KNC, KNL, PLATFORMS, get_platform
from .roofline import (
    RooflinePoint,
    attainable_gflops,
    peak_gflops,
    ridge_point,
    roofline_point,
)
from .spec import MachineSpec
from .stream import TriadResult, stream_table, stream_triad

__all__ = [
    "MachineSpec",
    "KNC",
    "KNL",
    "BROADWELL",
    "PLATFORMS",
    "get_platform",
    "ExecutionEngine",
    "KernelCost",
    "RunResult",
    "CostedKernel",
    "XAccessStats",
    "XAccessCost",
    "x_access_stats",
    "x_access_cost",
    "x_working_set_bytes",
    "residency_fractions",
    "clear_cache",
    "stream_triad",
    "RooflinePoint",
    "peak_gflops",
    "ridge_point",
    "attainable_gflops",
    "roofline_point",
    "stream_table",
    "TriadResult",
]
