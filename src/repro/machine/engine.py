"""Analytical multithreaded execution engine.

This is the substitute for running native OpenMP kernels on real
hardware (see DESIGN.md Section 2). A kernel variant exposes a *cost
plane*: per-thread core cycles, streamed memory bytes and exposed miss
latency for a given matrix and row partition. The engine turns those
into per-thread execution times using a first-order overlap model:

``t_thread = max(compute, bandwidth_share, latency / MLP) + extra``

with a global bandwidth-saturation floor (the memory system cannot move
more than ``B_max`` bytes/second regardless of per-thread overlap), SMT
pipeline sharing (core cycles stretch by the number of co-resident
hardware threads), per-launch fork/join overhead, and chunk-dispatch
overhead for the ``auto``/``dynamic`` schedules.

The per-thread time vector is exactly what the paper's bound-and-
bottleneck analysis consumes: ``P_IMB`` uses its median, bandwidth
utilization falls out of bytes/makespan, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..sched import Partition
from .spec import MachineSpec

__all__ = ["KernelCost", "RunResult", "ExecutionEngine", "CostedKernel"]

#: Core cycles to grab one scheduling chunk from the shared queue
#: (atomic fetch-add + loop restart) for auto/dynamic schedules.
_CHUNK_DISPATCH_CYCLES = 120.0


@dataclass(frozen=True)
class KernelCost:
    """Per-thread cost terms produced by a kernel's cost plane."""

    compute_cycles: np.ndarray      # core cycles per thread
    stream_bytes: np.ndarray        # DRAM/LLC traffic per thread
    latency_ns: np.ndarray          # exposed miss latency per thread (pre-MLP)
    mlp: float                      # effective memory-level parallelism
    flops: float                    # useful flops of the whole kernel
    working_set_bytes: float        # selects sustainable bandwidth level
    extra_seconds: np.ndarray | None = None  # e.g. reduction phases
    #: cost of the largest indivisible work unit (one row/block-row):
    #: a lower bound no dynamic schedule can beat, because work stealing
    #: cannot split a row (the reason the IMB pool includes matrix
    #: decomposition at all).
    max_unit_cycles: float = 0.0
    max_unit_latency_ns: float = 0.0

    def __post_init__(self) -> None:
        n = self.compute_cycles.shape
        if self.stream_bytes.shape != n or self.latency_ns.shape != n:
            raise ValueError("per-thread cost arrays must have equal shape")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")


class CostedKernel(Protocol):
    """Anything the engine can run (see :mod:`repro.kernels.base`)."""

    name: str

    def cost(self, data, machine: MachineSpec, partition: Partition) -> KernelCost:
        ...


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one parallel kernel execution."""

    kernel_name: str
    machine_codename: str
    nthreads: int
    seconds: float                  # makespan of one kernel invocation
    thread_seconds: np.ndarray
    flops: float
    total_bytes: float
    schedule_kind: str
    breakdown: dict = field(default_factory=dict, compare=False)

    @property
    def gflops(self) -> float:
        """Performance in Gflop/s (the paper's reporting unit)."""
        return self.flops / self.seconds / 1e9

    @property
    def bandwidth_gbs(self) -> float:
        """Achieved memory bandwidth in GB/s."""
        return self.total_bytes / self.seconds / 1e9

    @property
    def median_thread_seconds(self) -> float:
        """Median per-thread busy time (used by the P_IMB bound)."""
        return float(np.median(self.thread_seconds))

    @property
    def imbalance(self) -> float:
        """Max over mean thread time; 1.0 is perfectly balanced."""
        mean = float(self.thread_seconds.mean())
        if mean == 0.0:
            return 1.0
        return float(self.thread_seconds.max() / mean)

    def summary(self) -> dict:
        """Compact JSON-friendly digest, used by telemetry spans."""
        return {
            "kernel": self.kernel_name,
            "machine": self.machine_codename,
            "nthreads": int(self.nthreads),
            "seconds": float(self.seconds),
            "gflops": float(self.gflops),
            "bandwidth_gbs": float(self.bandwidth_gbs),
            "imbalance": float(self.imbalance),
            "schedule": self.schedule_kind,
        }


class ExecutionEngine:
    """Simulates kernel executions on one :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec, nthreads: int | None = None):
        self.machine = machine
        self.nthreads = (
            machine.total_threads if nthreads is None else int(nthreads)
        )
        if self.nthreads < 1:
            raise ValueError("nthreads must be >= 1")

    def run(self, kernel, data, partition: Partition | None = None) -> RunResult:
        """Simulate one execution of ``kernel`` on ``data``.

        ``partition`` defaults to the kernel's preferred partitioning
        at this engine's thread count.
        """
        if partition is None:
            partition = kernel.partition(data, self.nthreads)
        cost = kernel.cost(data, self.machine, partition)
        return self._finalize(kernel.name, cost, partition)

    # -- core time model ------------------------------------------------

    def _finalize(self, name: str, cost: KernelCost,
                  partition: Partition) -> RunResult:
        m = self.machine
        T = partition.nthreads

        t_comp = cost.compute_cycles * (m.smt / m.freq_hz)
        bw = m.bandwidth_for_working_set(cost.working_set_bytes)
        t_bw = cost.stream_bytes / (bw / T)
        t_lat = cost.latency_ns * (1e-9 / cost.mlp)

        thread = np.maximum(np.maximum(t_comp, t_bw), t_lat)
        if cost.extra_seconds is not None:
            thread = thread + cost.extra_seconds

        if partition.kind in ("auto", "dynamic"):
            chunks_per_thread = partition.n_chunks() / max(T, 1)
            dispatch = chunks_per_thread * _CHUNK_DISPATCH_CYCLES * (
                m.smt / m.freq_hz
            )
            thread = thread + dispatch

        if partition.is_dynamic:
            # Work stealing equalizes busy time across threads, but it
            # cannot split a row: the largest indivisible unit floors
            # the makespan (plus dispatch, already included above).
            unit_floor = max(
                cost.max_unit_cycles * (m.smt / m.freq_hz),
                cost.max_unit_latency_ns * (1e-9 / cost.mlp),
            )
            thread = np.full_like(
                thread, max(float(thread.mean()), unit_floor)
            )

        makespan = float(thread.max(initial=0.0))
        # Global bandwidth saturation floor.
        total_bytes = float(cost.stream_bytes.sum())
        makespan = max(makespan, total_bytes / bw)
        makespan += m.parallel_overhead_seconds(T)

        return RunResult(
            kernel_name=name,
            machine_codename=m.codename,
            nthreads=T,
            seconds=makespan,
            thread_seconds=thread,
            flops=cost.flops,
            total_bytes=total_bytes,
            schedule_kind=partition.kind,
            breakdown={
                "compute_s": t_comp,
                "bandwidth_s": t_bw,
                "latency_s": t_lat,
                "bandwidth_level_gbs": bw / 1e9,
            },
        )

    # -- paper-faithful measurement protocol ----------------------------

    def measure(self, kernel, data, partition: Partition | None = None,
                iterations: int = 128, runs: int = 5) -> RunResult:
        """Measure following the paper's protocol.

        The paper reports, per matrix, the harmonic mean over 5 runs of
        the rate of 128 warm-cache SpMV iterations. The simulator is
        deterministic, so this returns the same rate as :meth:`run`; the
        protocol is retained so the statistics pipeline (arithmetic mean
        of counts inside a run, harmonic mean of rates across runs) is
        exercised end to end.
        """
        if iterations < 1 or runs < 1:
            raise ValueError("iterations and runs must be >= 1")
        results = [self.run(kernel, data, partition) for _ in range(runs)]
        rates = np.array([r.gflops for r in results])
        hmean = rates.size / np.sum(1.0 / rates) if np.all(rates > 0) else 0.0
        base = results[0]
        return RunResult(
            kernel_name=base.kernel_name,
            machine_codename=base.machine_codename,
            nthreads=base.nthreads,
            seconds=base.flops / (hmean * 1e9) if hmean else float("inf"),
            thread_seconds=base.thread_seconds,
            flops=base.flops,
            total_bytes=base.total_bytes,
            schedule_kind=base.schedule_kind,
            breakdown=base.breakdown,
        )
