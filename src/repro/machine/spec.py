"""Machine specification for the analytical performance model.

A :class:`MachineSpec` captures the architectural parameters the paper's
bottleneck analysis reasons about (Table III plus the microarchitectural
properties the text discusses): core counts and SMT, frequency, cache
capacities, sustainable STREAM bandwidth in and out of LLC, cache-miss
latency (an order of magnitude higher on Xeon Phi than on multicores),
SIMD width, in-order vs out-of-order issue, hardware-prefetcher
strength and achievable memory-level parallelism.

Cycle-cost semantics: all ``*_cycles*`` parameters are **core cycles**.
When SMT siblings share a core, each hardware thread observes its own
work stretched by the number of co-resident threads; the execution
engine multiplies per-thread compute cycles by ``smt`` accordingly.

These parameters are *inputs* to the simulator; the per-platform values
live in :mod:`repro.machine.platforms`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Architectural parameters of one simulated platform."""

    name: str
    codename: str

    # topology / clock
    cores: int
    smt: int
    freq_ghz: float

    # memory hierarchy
    l1_kib: int
    l2_kib_per_core: float
    llc_mib: float              # shared last-level capacity (aggregate L2 on Phi)
    line_bytes: int

    # bandwidth / latency (STREAM triad numbers as in paper Table III)
    bw_main_gbs: float
    bw_llc_gbs: float
    mem_latency_ns: float       # full miss to DRAM
    llc_hit_latency_ns: float   # remote-L2 / L3 hit (still expensive on Phi)

    # core microarchitecture (core cycles; see module docstring)
    simd_doubles: int
    inorder: bool
    scalar_cycles_per_nnz: float    # baseline scalar inner-loop cost
    row_overhead_cycles: float      # loop bookkeeping per row (scalar)
    vec_row_overhead_cycles: float  # loop bookkeeping per row (vectorized)
    vec_iter_base_cycles: float     # per-SIMD-iteration fixed cost
    gather_cycles_per_elem: float   # x-gather cost per element (vector)
    unroll_speedup: float           # ILP gain of unrolling on long rows
    prefetch_issue_cycles: float    # extra cycles/nnz to issue sw prefetch
    decode_cycles_per_nnz: float    # delta-index decode cost

    # latency-hiding capability
    hw_prefetch_eff: float          # fraction of strided misses hidden by hw
    mlp: float                      # outstanding misses per thread (baseline)
    mlp_prefetch: float             # with software prefetching

    # parallel runtime overhead (fork/join + barrier per kernel launch)
    barrier_us_base: float
    barrier_us_per_thread: float

    def __post_init__(self) -> None:
        for fieldname in (
            "cores", "smt", "freq_ghz", "l1_kib", "l2_kib_per_core",
            "llc_mib", "line_bytes", "bw_main_gbs", "bw_llc_gbs",
            "mem_latency_ns", "llc_hit_latency_ns", "simd_doubles",
            "scalar_cycles_per_nnz", "row_overhead_cycles",
            "vec_row_overhead_cycles", "vec_iter_base_cycles",
            "gather_cycles_per_elem", "unroll_speedup", "mlp",
            "mlp_prefetch",
        ):
            if getattr(self, fieldname) <= 0:
                raise ValueError(f"{fieldname} must be positive")
        if not 0.0 <= self.hw_prefetch_eff <= 1.0:
            raise ValueError("hw_prefetch_eff must be in [0, 1]")

    # -- derived quantities -------------------------------------------

    @property
    def total_threads(self) -> int:
        """Hardware threads available (the paper uses all of them)."""
        return self.cores * self.smt

    @property
    def llc_bytes(self) -> int:
        return int(self.llc_mib * (1 << 20))

    @property
    def l2_bytes_per_core(self) -> int:
        return int(self.l2_kib_per_core * 1024)

    @property
    def line_elems(self) -> int:
        """float64 elements per cache line."""
        return self.line_bytes // 8

    @property
    def freq_hz(self) -> float:
        return self.freq_ghz * 1e9

    def bandwidth_for_working_set(self, ws_bytes: float) -> float:
        """Sustainable bandwidth (bytes/s) for a given working set.

        Implements the paper's footnote: bandwidth is "adjusted upwards
        for matrices that fit in the system's cache hierarchy". A
        smooth ramp between 0.5x and 1.0x LLC capacity avoids a
        discontinuity at exactly the cache size.
        """
        main = self.bw_main_gbs * 1e9
        llc = self.bw_llc_gbs * 1e9
        lo, hi = 0.5 * self.llc_bytes, float(self.llc_bytes)
        if ws_bytes <= lo:
            return llc
        if ws_bytes >= hi:
            return main
        frac = (ws_bytes - lo) / (hi - lo)
        return llc + frac * (main - llc)

    def parallel_overhead_seconds(self, nthreads: int) -> float:
        """Fork/join + barrier cost of one parallel kernel launch."""
        return (
            self.barrier_us_base + self.barrier_us_per_thread * nthreads
        ) * 1e-6

    def with_(self, **overrides) -> "MachineSpec":
        """A copy with some parameters replaced (for ablations)."""
        return replace(self, **overrides)
