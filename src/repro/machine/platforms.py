"""The three experimental platforms of the paper (Table III).

Headline numbers (cores, SMT, frequency, cache sizes, STREAM triad
main/LLC bandwidth) are copied from Table III. Microarchitectural
parameters without a number in the paper (latencies, MLP, issue costs)
are set from the paper's qualitative statements — e.g. "a very
expensive (an order of magnitude higher compared to multi-cores) cache
miss latency" on the Phis, in-order cores with weak scalar pipelines on
KNC, weak hardware prefetching on the Phis versus strong on Broadwell —
and from public microbenchmark literature for those parts. They were
then jointly calibrated so the *shape* of the paper's Figures 1, 4 and
7 emerges (see EXPERIMENTS.md), not fit per matrix.
"""

from __future__ import annotations

from .spec import MachineSpec

__all__ = ["KNC", "KNL", "BROADWELL", "PLATFORMS", "get_platform"]

#: Intel Xeon Phi 3120P (Knights Corner). In-order cores, 4-way SMT,
#: 512 KiB private L2 per core (30 MiB aggregate, remote hits travel the
#: ring), no L3, GDDR5 memory. The in-order pipeline can keep very few
#: misses in flight and the scalar FP path is weak, so the ML and CMP
#: classes are prominent here.
KNC = MachineSpec(
    name="Intel Xeon Phi 3120P",
    codename="knc",
    cores=57,
    smt=4,
    freq_ghz=1.10,
    l1_kib=32,
    l2_kib_per_core=512,
    llc_mib=30.0,
    line_bytes=64,
    bw_main_gbs=128.0,
    bw_llc_gbs=140.0,
    mem_latency_ns=310.0,
    llc_hit_latency_ns=210.0,
    simd_doubles=8,
    inorder=True,
    scalar_cycles_per_nnz=7.0,
    row_overhead_cycles=10.0,
    vec_row_overhead_cycles=12.0,
    vec_iter_base_cycles=4.0,
    gather_cycles_per_elem=1.2,
    unroll_speedup=1.35,
    prefetch_issue_cycles=0.6,
    decode_cycles_per_nnz=0.8,
    hw_prefetch_eff=0.25,
    mlp=1.6,
    mlp_prefetch=7.0,
    barrier_us_base=4.0,
    barrier_us_per_thread=0.045,
)

#: Intel Xeon Phi 7250 (Knights Landing) in Flat mode with the whole
#: application allocated on MCDRAM (HBM), as in the paper. Modest
#: out-of-order cores, 4-way SMT, 1 MiB L2 per 2-core tile (34 MiB
#: aggregate), very high HBM bandwidth.
KNL = MachineSpec(
    name="Intel Xeon Phi 7250",
    codename="knl",
    cores=68,
    smt=4,
    freq_ghz=1.40,
    l1_kib=32,
    l2_kib_per_core=512,
    llc_mib=34.0,
    line_bytes=64,
    bw_main_gbs=395.0,
    bw_llc_gbs=570.0,
    mem_latency_ns=165.0,
    llc_hit_latency_ns=140.0,
    simd_doubles=8,
    inorder=False,
    scalar_cycles_per_nnz=2.6,
    row_overhead_cycles=6.0,
    vec_row_overhead_cycles=7.0,
    vec_iter_base_cycles=3.0,
    gather_cycles_per_elem=0.4,
    unroll_speedup=1.3,
    prefetch_issue_cycles=0.35,
    decode_cycles_per_nnz=0.6,
    hw_prefetch_eff=0.5,
    mlp=3.5,
    mlp_prefetch=10.0,
    barrier_us_base=3.0,
    barrier_us_per_thread=0.03,
)

#: Intel Xeon E5-2699 v4 (Broadwell). Wide out-of-order cores, strong
#: hardware prefetchers, big shared L3, but far less main-memory
#: bandwidth than KNL's HBM — off-cache SpMV is usually simply MB here,
#: and only cache-resident matrices leave room for other bottlenecks.
BROADWELL = MachineSpec(
    name="Intel Xeon E5-2699 v4",
    codename="broadwell",
    cores=22,
    smt=2,
    freq_ghz=2.20,
    l1_kib=32,
    l2_kib_per_core=256,
    llc_mib=55.0,
    line_bytes=64,
    bw_main_gbs=60.0,
    bw_llc_gbs=200.0,
    mem_latency_ns=90.0,
    llc_hit_latency_ns=35.0,
    simd_doubles=4,
    inorder=False,
    scalar_cycles_per_nnz=1.6,
    row_overhead_cycles=4.0,
    vec_row_overhead_cycles=5.0,
    vec_iter_base_cycles=2.0,
    gather_cycles_per_elem=0.5,
    unroll_speedup=1.2,
    prefetch_issue_cycles=0.3,
    decode_cycles_per_nnz=0.5,
    hw_prefetch_eff=0.85,
    mlp=10.0,
    mlp_prefetch=12.0,
    barrier_us_base=1.2,
    barrier_us_per_thread=0.04,
)

PLATFORMS: dict[str, MachineSpec] = {
    "knc": KNC,
    "knl": KNL,
    "broadwell": BROADWELL,
}


def get_platform(codename: str) -> MachineSpec:
    """Look up a platform by codename (``knc``, ``knl``, ``broadwell``)."""
    try:
        return PLATFORMS[codename.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {codename!r}; available: {sorted(PLATFORMS)}"
        ) from None
