"""Command-line interface.

::

    repro-spmv suite                      # list the named matrix suite
    repro-spmv analyze NAME --platform knl
    repro-spmv analyze path/to/matrix.mtx --platform knc
    repro-spmv plan NAME --explain        # staged planning breakdown
    repro-spmv trace NAME                 # JSON span export
    repro-spmv validate path/to/matrix.mtx
    repro-spmv run NAME --engine-spec guard,threads=2,supervise
    repro-spmv bench --rhs 32             # single vs batched GFLOP/s
    repro-spmv parallel NAME --threads 1,2,4,8   # measured imbalance
    repro-spmv calibrate --quick -o profile.json # host MachineProfile
    repro-spmv model NAME --explain       # Table I/II bound breakdown
    repro-spmv experiment fig7-knl --scale 0.5
    repro-spmv experiments                # list experiment ids
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    AdaptiveSpMV,
    PlanCache,
    classify_from_bounds,
    format_classes,
    measure_bounds,
)
from .machine import PLATFORMS, get_platform
from .matrices import (
    NAMED_SUITE,
    matrix_stats,
    named_matrix,
    read_matrix_market,
    suite_names,
)

__all__ = ["main", "build_parser"]


#: ``--engine-spec`` help text shared by the subcommands that take one.
_ENGINE_SPEC_HELP = (
    "execution-stack spec: comma-separated tokens among "
    "guard, threads=N, schedule=NAME, chunk-rows=N, supervise, "
    "deadline-ms=F, retries=N, backoff-ms=F, no-serial-fallback, "
    "workspace=shared|thread-local, trace "
    "(e.g. 'guard,threads=4,supervise,deadline-ms=500')"
)


def parse_engine_spec(text: str):
    """Parse a compact ``--engine-spec`` string into an
    :class:`~repro.engine.ExecutorSpec`.

    Supervision tokens (``deadline-ms`` / ``retries`` / ``backoff-ms``
    / ``no-serial-fallback``) imply ``supervise``; ``supervise`` and
    the parallel tokens require ``threads=N``.
    """
    from .engine import ExecutorSpec, SupervisionSpec

    guard = False
    trace = False
    workspace = "none"
    threads = None
    schedule = "balanced-nnz"
    chunk_rows = None
    supervise = False
    sup_kwargs: dict = {}
    for raw in text.split(","):
        token = raw.strip()
        if not token:
            continue
        key, _, value = token.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "guard" and not value:
            guard = True
        elif key == "trace" and not value:
            trace = True
        elif key == "supervise" and not value:
            supervise = True
        elif key == "workspace":
            workspace = value
        elif key == "threads":
            threads = int(value)
        elif key == "schedule":
            schedule = value
        elif key == "chunk-rows":
            chunk_rows = int(value)
        elif key == "deadline-ms":
            supervise = True
            sup_kwargs["deadline_seconds"] = float(value) / 1e3
        elif key == "retries":
            supervise = True
            sup_kwargs["max_retries"] = int(value)
        elif key == "backoff-ms":
            supervise = True
            sup_kwargs["backoff_seconds"] = float(value) / 1e3
        elif key == "no-serial-fallback" and not value:
            supervise = True
            sup_kwargs["serial_fallback"] = False
        else:
            raise ValueError(f"unknown engine-spec token {token!r}")
    if supervise and threads is None:
        raise ValueError(
            "engine-spec: supervision tokens require threads=N"
        )
    parallel = None
    if threads is not None:
        from .parallel import ParallelConfig

        parallel = ParallelConfig(nthreads=threads, schedule=schedule,
                                  chunk_rows=chunk_rows)
    return ExecutorSpec(
        guard=guard,
        parallel=parallel,
        supervision=SupervisionSpec(**sup_kwargs) if supervise else None,
        workspace=workspace,
        trace=trace,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv",
        description="Adaptive bottleneck-classifying SpMV optimizer "
        "(IPDPS'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="list the named matrix suite")
    p_suite.add_argument("--scale", type=float, default=0.2,
                         help="size scale for the stats column")

    p_an = sub.add_parser("analyze", help="classify and optimize a matrix")
    p_an.add_argument("matrix",
                      help="suite matrix name or MatrixMarket file path")
    p_an.add_argument("--platform", default="knl",
                      choices=sorted(PLATFORMS))
    p_an.add_argument("--scale", type=float, default=1.0)

    p_plan = sub.add_parser(
        "plan",
        help="run the staged planning pipeline without executing",
    )
    p_plan.add_argument("matrix",
                        help="suite matrix name or MatrixMarket file path")
    p_plan.add_argument("--platform", default="knl",
                        choices=sorted(PLATFORMS))
    p_plan.add_argument("--scale", type=float, default=1.0)
    p_plan.add_argument("--explain", action="store_true",
                        help="print the per-stage overhead breakdown")
    p_plan.add_argument("--cache", default=None, metavar="PATH",
                        help="warm-start from a persisted plan cache "
                        "(created by --save-cache) when it exists")
    p_plan.add_argument("--save-cache", default=None, metavar="PATH",
                        help="persist the plan cache after planning")
    p_plan.add_argument("--profile", default=None, metavar="PATH",
                        help="plan through a CalibratedModel built from "
                        "this machine profile (see 'calibrate'); the "
                        "profile digest folds into the plan-cache key")

    p_trace = sub.add_parser(
        "trace",
        help="optimize + simulate one matrix and export the stage "
        "spans as JSON",
    )
    p_trace.add_argument("matrix",
                         help="suite matrix name or MatrixMarket file path")
    p_trace.add_argument("--platform", default="knl",
                         choices=sorted(PLATFORMS))
    p_trace.add_argument("--scale", type=float, default=1.0)
    p_trace.add_argument("--guard", action="store_true",
                         help="run the kernel under the guard wrapper")
    p_trace.add_argument("-o", "--output", default="-", metavar="PATH",
                         help="trace JSON path ('-' for stdout)")

    p_run = sub.add_parser(
        "run",
        help="optimize one matrix and execute it through a composed "
        "engine stack",
    )
    p_run.add_argument("matrix",
                       help="suite matrix name or MatrixMarket file path")
    p_run.add_argument("--platform", default="knl",
                       choices=sorted(PLATFORMS))
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--engine-spec", default=None, metavar="SPEC",
                       help=_ENGINE_SPEC_HELP)
    p_run.add_argument("--repeats", type=int, default=3,
                       help="apply repetitions (best wall is kept)")

    p_val = sub.add_parser(
        "validate",
        help="validate a MatrixMarket file (structure + values); "
        "nonzero exit on failure",
    )
    p_val.add_argument("matrix", help="MatrixMarket file path")
    p_val.add_argument("--no-values", action="store_true",
                       help="skip the finite-values check")

    p_tr = sub.add_parser(
        "train", help="train and save a feature-guided classifier"
    )
    p_tr.add_argument("output", help="path for the classifier JSON")
    p_tr.add_argument("--platform", default="knl",
                      choices=sorted(PLATFORMS))
    p_tr.add_argument("--count", type=int, default=210,
                      help="training corpus size")
    p_tr.add_argument("--seed", type=int, default=2017)

    p_ex = sub.add_parser(
        "export-suite",
        help="write the named suite as MatrixMarket files",
    )
    p_ex.add_argument("directory")
    p_ex.add_argument("--scale", type=float, default=1.0)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark single-RHS vs batched SpMV per kernel variant",
    )
    p_bench.add_argument("--rhs", type=int, default=32,
                         help="right-hand sides per batch")
    p_bench.add_argument("--scale", type=float, default=1.0,
                         help="benchmark matrix size scale")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timing repetitions (median is kept)")
    p_bench.add_argument("--output", default="BENCH_kernels.json",
                         help="JSON output path ('-' to skip writing)")
    p_bench.add_argument("--threads", default="1,2,4,8",
                         help="comma-separated thread counts for the "
                         "measured-parallel section")
    p_bench.add_argument("--engine-spec", default=None, metavar="SPEC",
                         help=_ENGINE_SPEC_HELP + "; layered around the "
                         "measured-parallel cells (threads/schedule come "
                         "from the sweep grid)")
    p_bench.add_argument("--profile", default=None, metavar="PATH",
                         help="predict the v4 model columns through a "
                         "CalibratedModel built from this machine "
                         "profile (see 'calibrate')")
    p_bench.add_argument("--platform", default="knl",
                         choices=sorted(PLATFORMS),
                         help="simulated platform the model columns "
                         "predict against")

    p_par = sub.add_parser(
        "parallel",
        help="run real threaded SpMV on one matrix: measured vs "
        "predicted imbalance per schedule policy and thread count",
    )
    p_par.add_argument("matrix",
                       help="suite matrix name or MatrixMarket file path")
    p_par.add_argument("--platform", default="knl",
                       choices=sorted(PLATFORMS))
    p_par.add_argument("--scale", type=float, default=1.0)
    p_par.add_argument("--threads", default="1,2,4,8",
                       help="comma-separated thread counts")
    p_par.add_argument("--schedule", default=None,
                       help="one schedule policy (default: all)")
    p_par.add_argument("--repeats", type=int, default=3,
                       help="timing repetitions (best wall is kept)")
    p_par.add_argument("--guard", action="store_true",
                       help="compose the guard wrapper under the pool")
    p_par.add_argument("--deadline-ms", default=None,
                       help="per-apply deadline budget in milliseconds, "
                       "or 'auto' to derive it from the cost model's "
                       "prediction; a breached run degrades through the "
                       "supervision ladder instead of blocking")
    p_par.add_argument("--max-retries", type=int, default=2,
                       help="reduced-width retries before the serial "
                       "fallback (default 2)")
    p_par.add_argument("--engine-spec", default=None, metavar="SPEC",
                       help=_ENGINE_SPEC_HELP + "; guard/supervision "
                       "axes compose with the sweep (threads/schedule "
                       "come from --threads/--schedule)")
    p_par.add_argument("--profile", default=None, metavar="PATH",
                       help="predict through a CalibratedModel built "
                       "from this machine profile (see 'calibrate')")

    p_cal = sub.add_parser(
        "calibrate",
        help="measure a host MachineProfile (STREAM bandwidth, gather "
        "latency, per-kernel microbenchmarks) for a simulated platform",
    )
    p_cal.add_argument("--platform", default="knl",
                       choices=sorted(PLATFORMS))
    p_cal.add_argument("--quick", action="store_true",
                       help="one matrix, two kernels, fewer repeats "
                       "(the CI smoke configuration)")
    p_cal.add_argument("--threads", type=int, default=None,
                       help="model thread count the analytic side "
                       "predicts at (default: machine total)")
    p_cal.add_argument("--repeats", type=int, default=None,
                       help="timing repetitions per microbenchmark "
                       "(default 3 quick / 7 full)")
    p_cal.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="profile JSON path (default "
                       "profile_<platform>.json; '-' to skip writing)")

    p_model = sub.add_parser(
        "model",
        help="print the cost model's bound-and-bottleneck breakdown "
        "for one matrix (paper Tables I/II)",
    )
    p_model.add_argument("matrix",
                         help="suite matrix name or MatrixMarket file path")
    p_model.add_argument("--platform", default="knl",
                         choices=sorted(PLATFORMS))
    p_model.add_argument("--scale", type=float, default=1.0)
    p_model.add_argument("--threads", type=int, default=None,
                         help="thread count predictions run at "
                         "(default: machine total)")
    p_model.add_argument("--profile", default=None, metavar="PATH",
                         help="use a CalibratedModel built from this "
                         "machine profile (see 'calibrate')")
    p_model.add_argument("--explain", action="store_true",
                         help="additionally decompose each pool kernel "
                         "variant into its first-order time terms and "
                         "rank schedule policies")

    sub.add_parser("experiments", help="list experiment ids")

    p_exp = sub.add_parser("experiment", help="run one experiment driver")
    p_exp.add_argument("experiment_id")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--train-count", type=int, default=210)

    return parser


def _load_matrix(ref: str, scale: float):
    if ref in suite_names():
        return named_matrix(ref, scale=scale)
    return read_matrix_market(ref)


def _load_model(machine, profile_path, nthreads=None):
    """The cost model a ``--profile`` flag selects.

    ``None`` path → the default analytic model (returned as ``None`` so
    callers keep their legacy defaults); otherwise a
    :class:`~repro.model.CalibratedModel` over the loaded profile.
    """
    if profile_path is None:
        return None
    from .model import CalibratedModel, MachineProfile

    profile = MachineProfile.load(profile_path)
    return CalibratedModel(machine, profile, nthreads)


def _cmd_suite(args) -> int:
    print(f"{'name':18s} {'domain':22s} rows       nnz        description")
    for spec in NAMED_SUITE:
        csr = spec(args.scale)
        desc = spec.description.split(".")[0]
        print(f"{spec.name:18s} {spec.domain:22s} "
              f"{csr.nrows:<10d} {csr.nnz:<10d} {desc}")
    return 0


def _cmd_analyze(args) -> int:
    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    print(matrix_stats(csr).describe())
    print()
    bounds = measure_bounds(csr, machine)
    print(f"bounds on {machine.codename} (Gflop/s):")
    for k, v in bounds.as_dict().items():
        print(f"  {k:7s} {v:10.2f}")
    classes = classify_from_bounds(bounds)
    print(f"classes: {format_classes(classes)}")
    optimizer = AdaptiveSpMV(machine, classifier="profile")
    op = optimizer.optimize(csr)
    r = op.simulate()
    print(f"plan:    {op.plan}")
    print(
        f"optimized: {r.gflops:.2f} Gflop/s "
        f"({r.gflops / bounds.p_csr:.2f}x over baseline CSR)"
    )
    op2 = optimizer.optimize(csr)
    print(
        f"repeat build: cache_hit={op2.plan.cache_hit}, overhead "
        f"{1e3 * op2.plan.total_overhead_seconds:.2f} ms (first build "
        f"paid {1e3 * op.plan.total_overhead_seconds:.2f} ms)"
    )
    return 0


#: Span attributes surfaced in the ``plan --explain`` detail column.
_EXPLAIN_DETAIL_KEYS = (
    "hit", "classes", "classifier", "optimizations", "kernel",
    "quarantine_substitutions", "materialized", "nnz",
)


def _explain_detail(span) -> str:
    parts = []
    for key in _EXPLAIN_DETAIL_KEYS:
        if key in span.attributes:
            value = span.attributes[key]
            if isinstance(value, list):
                value = "+".join(str(v) for v in value) or "-"
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _cmd_plan(args) -> int:
    import os

    from .experiments.common import render_table
    from .pipeline import Tracer

    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    cache = None
    if args.cache and os.path.exists(args.cache):
        cache = PlanCache.load(args.cache)
        print(f"loaded plan cache {args.cache} ({len(cache)} entries)")
    try:
        model = _load_model(machine, args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    optimizer = AdaptiveSpMV(machine, classifier="profile",
                             plan_cache=cache, model=model)
    tracer = Tracer()
    plan = optimizer.plan(csr, tracer=tracer)
    print(f"plan: {plan}")
    print(f"cache_hit={plan.cache_hit} cost_model={plan.cost_model}")
    if args.explain:
        rows = [
            (s.name, float(1e3 * s.charged_seconds),
             float(1e3 * s.wall_seconds), _explain_detail(s))
            for s in tracer.spans
        ]
        total_charged = tracer.total_charged_seconds()
        rows.append(("total", float(1e3 * total_charged),
                     float(1e3 * tracer.total_wall_seconds()), ""))
        print(render_table(
            ("stage", "charged (ms)", "wall (ms)", "detail"), rows
        ))
        print(
            f"stage charges sum to {1e3 * total_charged:.6f} ms; "
            f"plan total overhead is "
            f"{1e3 * plan.total_overhead_seconds:.6f} ms"
        )
        # The plan IR embeds the execution stack; prove the spec
        # survives serialization (what PlanCache.save persists and a
        # fresh process rebuilds from).
        from .engine import ExecutorSpec

        spec = plan.executor_spec
        roundtrip = ExecutorSpec.from_dict(spec.to_dict())
        status = "ok" if roundtrip == spec else "MISMATCH"
        print(f"engine-spec round-trip: {status} [{spec.signature()}]")
    if args.save_cache:
        n = (optimizer.plan_cache.save(args.save_cache)
             if optimizer.plan_cache is not None else 0)
        print(f"saved plan cache {args.save_cache} ({n} entries)")
    return 0


def _cmd_trace(args) -> int:
    from .pipeline import PipelineRunner, Tracer

    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    tracer = Tracer()
    runner = PipelineRunner(machine, tracer=tracer)
    optimizer = AdaptiveSpMV(machine, classifier="profile",
                             guard=args.guard)
    _, result = runner.run_optimized(optimizer, csr)
    if args.output == "-":
        print(tracer.to_json())
    else:
        tracer.export(args.output)
        print(
            f"wrote {args.output} ({len(tracer)} spans, "
            f"{result.gflops:.2f} Gflop/s simulated)"
        )
    return 0


def _cmd_run(args) -> int:
    import time

    import numpy as np

    from .engine import ExecutorSpec
    from .pipeline import Tracer

    try:
        spec = (parse_engine_spec(args.engine_spec)
                if args.engine_spec else ExecutorSpec())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    optimizer = AdaptiveSpMV(machine, classifier="profile", spec=spec)
    op = optimizer.optimize(csr)
    tracer = Tracer() if spec.trace else None
    engine = op.executor(tracer=tracer)
    print(f"plan:  {op.plan}")
    print(f"spec:  {spec.signature()}")
    print(f"stack: {engine.describe()}")
    x = np.linspace(-1.0, 1.0, csr.ncols)
    out = np.empty(csr.nrows)
    engine.apply(x, out=out)  # warm up pool + workspace
    best = None
    for _ in range(max(1, args.repeats)):
        t0 = time.perf_counter()
        engine.apply(x, out=out)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    identical = bool(np.array_equal(out, csr.matvec(x)))
    flops = 2.0 * csr.nnz
    print(
        f"best wall {1e3 * best:.3f} ms "
        f"({flops / best / 1e9:.2f} Gflop/s, best of {args.repeats}); "
        f"bit-identical to serial CSR: {identical}"
    )
    if tracer is not None:
        print(f"trace: {len(tracer)} spans recorded")
    return 0 if identical else 1


def _cmd_validate(args) -> int:
    from .matrices.mmio import MatrixMarketError

    try:
        csr = read_matrix_market(args.matrix)
    except MatrixMarketError as exc:
        print(f"{args.matrix}: INVALID ({exc})", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"{args.matrix}: cannot read ({exc})", file=sys.stderr)
        return 1
    report = csr.validate(strict=False, check_values=not args.no_values)
    if report.ok:
        print(
            f"{args.matrix}: OK ({csr.nrows}x{csr.ncols}, "
            f"nnz={csr.nnz})"
        )
        return 0
    print(f"{args.matrix}: INVALID ({len(report.issues)} issue(s))",
          file=sys.stderr)
    for issue in report.issues:
        print(f"  [{issue.code}] {issue.message}", file=sys.stderr)
    return 1


def _parse_threads(spec: str) -> tuple[int, ...]:
    threads = tuple(int(t) for t in spec.split(",") if t.strip())
    if not threads or any(t < 1 for t in threads):
        raise ValueError(f"bad thread list {spec!r}")
    return threads


def _cmd_bench(args) -> int:
    from .experiments import bench_batched

    if args.rhs < 1:
        print("error: --rhs must be >= 1", file=sys.stderr)
        return 2
    try:
        threads = _parse_threads(args.threads)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine_spec = None
    if args.engine_spec:
        try:
            engine_spec = parse_engine_spec(args.engine_spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    machine = get_platform(args.platform)
    try:
        model = _load_model(machine, args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = None if args.output == "-" else args.output
    table = bench_batched.run(
        rhs=args.rhs, scale=args.scale, repeats=args.repeats,
        out_path=out, threads=threads, engine_spec=engine_spec,
        model=model,
    )
    print(table.to_text())
    return 0


def _cmd_parallel(args) -> int:
    from .experiments.common import render_table
    from .kernels import baseline_kernel
    from .pipeline import PipelineRunner
    from .sched import SCHEDULE_POLICIES

    try:
        threads = _parse_threads(args.threads)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.schedule is not None and args.schedule not in SCHEDULE_POLICIES:
        print(
            f"error: unknown schedule {args.schedule!r}; "
            f"available: {', '.join(SCHEDULE_POLICIES)}",
            file=sys.stderr,
        )
        return 2
    schedules = ([args.schedule] if args.schedule
                 else list(SCHEDULE_POLICIES))
    spec = None
    if args.engine_spec:
        try:
            spec = parse_engine_spec(args.engine_spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    kernel = baseline_kernel()
    if args.guard or (spec is not None and spec.guard):
        from .engine import GuardLayer

        kernel = GuardLayer().wrap(kernel)
    if args.deadline_ms is None:
        deadline_seconds = None
    elif args.deadline_ms == "auto":
        deadline_seconds = "auto"
    else:
        try:
            deadline_seconds = float(args.deadline_ms) / 1e3
        except ValueError:
            print(f"error: --deadline-ms must be a number or 'auto', "
                  f"got {args.deadline_ms!r}", file=sys.stderr)
            return 2
    max_retries = args.max_retries
    if spec is not None and spec.supervision is not None:
        # Explicit flags win; the spec fills whatever was left default.
        if deadline_seconds is None:
            deadline_seconds = spec.supervision.deadline_seconds
        if max_retries == 2:
            max_retries = spec.supervision.max_retries
    try:
        model = _load_model(machine, args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = PipelineRunner(machine, model=model)
    rows = []
    ladders = []
    for schedule in schedules:
        for nthreads in threads:
            result, meas, report = runner.measure_parallel(
                kernel, csr, nthreads, schedule=schedule,
                repeats=args.repeats,
                deadline_seconds=deadline_seconds,
                max_retries=max_retries,
            )
            if meas is not None:
                rows.append((
                    schedule, meas.nthreads,
                    float(1e3 * meas.wall_seconds),
                    float(meas.imbalance),
                    float(meas.wall_imbalance),
                    float(result.imbalance),
                ))
            else:
                rows.append((
                    schedule, "serial",
                    float(1e3 * report.wall_seconds),
                    "-", "-",
                    float(result.imbalance),
                ))
            if report is not None and report.degraded:
                ladders.append((schedule, nthreads, report))
    print(f"{csr.nrows}x{csr.ncols} nnz={csr.nnz} on "
          f"{machine.codename}; measured on this host, best of "
          f"{args.repeats}")
    if model is not None:
        print(f"cost model: {model.signature()}")
    print(render_table(
        ("schedule", "threads", "wall (ms)", "imb (cpu)",
         "imb (wall)", "imb (model)"), rows
    ))
    print("imb (cpu) = max/mean per-thread CPU time (measured); "
          "imb (model) = cost-plane prediction at the same threads")
    if ladders:
        budget = ("none" if deadline_seconds is None
                  else f"{1e3 * deadline_seconds:.1f} ms")
        print(f"degradation ladder (deadline budget {budget}, "
              f"max retries {max_retries}):")
        for schedule, nthreads, report in ladders:
            final = ("serial" if report.final_mode != "parallel"
                     else f"t{report.final_nthreads}")
            print(f"  {schedule} t{nthreads}: {report.ladder()} "
                  f"[final {final}, "
                  f"{1e3 * report.wall_seconds:.2f} ms]")
    elif deadline_seconds is not None or max_retries != 2:
        print("degradation ladder: no demotions (every run completed "
              "at the requested width)")
    return 0


def _cmd_calibrate(args) -> int:
    from .model import calibrate

    machine = get_platform(args.platform)
    mode = "quick" if args.quick else "full"
    print(f"calibrating {machine.codename} on this host ({mode})...")
    profile = calibrate(machine, quick=args.quick,
                        nthreads=args.threads, repeats=args.repeats)
    m = profile.measured
    print(f"host:              {profile.host}")
    print(f"stream bandwidth:  {m['stream_bandwidth_gbs']:.2f} GB/s "
          f"(scale {profile.bandwidth_scale:.3g} vs simulated "
          f"{machine.codename})")
    print(f"gather latency:    {m['gather_latency_ns']:.2f} ns/elem")
    print("kernel scales (measured / predicted wall time):")
    for name, scale in sorted(profile.kernel_scales.items()):
        print(f"  {name:24s} {scale:.4g}")
    par = m.get("parallel")
    if par:
        print(f"parallel plane:    t{par['nthreads']} on "
              f"{par['matrix']}: ratio {par['ratio']:.4g}")
    print(f"calibration took   {m['calibration_seconds']:.2f} s "
          f"({profile.samples} cells)")
    print(f"signature:         {profile.signature()}")
    output = args.output
    if output is None:
        output = f"profile_{args.platform}.json"
    if output != "-":
        profile.save(output)
        print(f"saved {output}")
    return 0


def _cmd_model(args) -> int:
    from .experiments.common import render_table
    from .model import AnalyticModel

    machine = get_platform(args.platform)
    csr = _load_matrix(args.matrix, args.scale)
    try:
        model = _load_model(machine, args.profile, args.threads)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if model is None:
        model = AnalyticModel(machine, args.threads)
    bounds = model.bounds(csr)
    classes = classify_from_bounds(bounds)
    print(f"{args.matrix}: {csr.nrows}x{csr.ncols} nnz={csr.nnz} on "
          f"{machine.codename} (cost model: {model.signature()})")
    rows = [
        (name, float(gflops), float(gflops / bounds.p_csr))
        for name, gflops in bounds.as_dict().items()
    ]
    print(render_table(("bound", "Gflop/s", "x of P_CSR"), rows))
    print(f"classes: {format_classes(classes)}")
    if not args.explain:
        return 0

    # Per-variant decomposition: which first-order term of the overlap
    # model bounds each pool kernel's makespan (Table II companion).
    from .kernels import baseline_kernel, merged_pool_kernel
    from .sched import rank_policies

    kernels = [baseline_kernel()]
    for name in ("compression", "prefetching", "unrolling", "auto-sched"):
        kernels.append(merged_pool_kernel((name,)))
    rows = []
    for kernel in kernels:
        pred = model.predict(kernel, kernel.preprocess(csr),
                             nthreads=args.threads)
        d = pred.decomposition
        rows.append((
            kernel.name, float(pred.gflops),
            float(1e3 * d.get("compute_s", 0.0)),
            float(1e3 * d.get("bandwidth_s", 0.0)),
            float(1e3 * d.get("latency_s", 0.0)),
            float(pred.imbalance),
            pred.dominant_term().replace("_s", ""),
        ))
    print()
    print(render_table(
        ("kernel", "Gflop/s", "compute (ms)", "bandwidth (ms)",
         "latency (ms)", "imbalance", "bound by"), rows
    ))
    nthreads = args.threads or machine.total_threads
    ranked = rank_policies(csr, model, nthreads)
    order = ", ".join(
        f"{name} ({pred.gflops:.2f})" for name, pred in ranked
    )
    print(f"schedule ranking at t{nthreads} (Gflop/s): {order}")
    return 0


def _experiment_registry() -> dict:
    from . import experiments as exp

    return {
        "fig1": lambda a: exp.fig1.run(scale=a.scale),
        "fig4": lambda a: exp.fig4.run(scale=a.scale),
        "fig5": lambda a: exp.fig5.run(),
        "fig7-knc": lambda a: exp.fig7.run("knc", scale=a.scale,
                                           train_count=a.train_count),
        "fig7-knl": lambda a: exp.fig7.run("knl", scale=a.scale,
                                           train_count=a.train_count),
        "fig7-broadwell": lambda a: exp.fig7.run("broadwell", scale=a.scale,
                                                 train_count=a.train_count),
        "table2": lambda a: exp.table2.run(),
        "table2-scaling": lambda a: exp.table2.extraction_scaling(),
        "table3": lambda a: exp.table3.run(),
        "table4": lambda a: exp.table4.run(train_count=a.train_count),
        "table5": lambda a: exp.table5.run(scale=a.scale,
                                           train_count=a.train_count),
        "ablation-imb": lambda a: exp.ablations.imb_strategy(scale=a.scale),
        "ablation-delta": lambda a: exp.ablations.delta_width(scale=a.scale),
        "ablation-sched": lambda a: exp.ablations.scheduling_policies(
            scale=a.scale),
        "ablation-tree": lambda a: exp.ablations.tree_ablation(),
        "ablation-partitioned-ml": lambda a: exp.ablations.partitioned_ml(
            scale=a.scale),
        "ablation-bcsr": lambda a: exp.ablations.bcsr_vs_delta(
            scale=a.scale),
        "ablation-formats": lambda a: exp.ablations.format_landscape(
            scale=a.scale),
        "ablation-sensitivity": lambda a:
            exp.ablations.architecture_sensitivity(scale=a.scale),
    }


def _cmd_train(args) -> int:
    from .core import FeatureGuidedClassifier
    from .matrices import training_suite

    machine = get_platform(args.platform)
    print(
        f"building {args.count}-matrix corpus and labeling on "
        f"{machine.codename} (profile-guided)..."
    )
    corpus = [
        t.matrix for t in training_suite(count=args.count, seed=args.seed)
    ]
    clf = FeatureGuidedClassifier(machine).fit_from_matrices(corpus)
    clf.save(args.output)
    rep = clf.report
    print(f"labels: {rep.label_counts}")
    print(f"tree: depth {rep.tree_depth}, {rep.tree_leaves} leaves")
    print(f"saved to {args.output}")
    return 0


def _cmd_export_suite(args) -> int:
    import os

    from .matrices import load_suite, write_matrix_market

    os.makedirs(args.directory, exist_ok=True)
    for spec, csr in load_suite(scale=args.scale):
        path = os.path.join(args.directory, f"{spec.name}.mtx")
        write_matrix_market(
            csr, path,
            comment=f"synthetic analogue of {spec.name} ({spec.domain}); "
            f"scale={args.scale}",
        )
        print(f"{path}: {csr.nrows}x{csr.ncols} nnz={csr.nnz}")
    return 0


def _cmd_experiments(args) -> int:
    for key in _experiment_registry():
        print(key)
    return 0


def _cmd_experiment(args) -> int:
    registry = _experiment_registry()
    if args.experiment_id not in registry:
        print(
            f"unknown experiment {args.experiment_id!r}; "
            f"available: {', '.join(registry)}",
            file=sys.stderr,
        )
        return 2
    table = registry[args.experiment_id](args)
    print(table.to_text())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "suite": _cmd_suite,
        "analyze": _cmd_analyze,
        "plan": _cmd_plan,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "validate": _cmd_validate,
        "bench": _cmd_bench,
        "parallel": _cmd_parallel,
        "calibrate": _cmd_calibrate,
        "model": _cmd_model,
        "train": _cmd_train,
        "export-suite": _cmd_export_suite,
        "experiments": _cmd_experiments,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
