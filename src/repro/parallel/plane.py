"""Real shared-memory parallel SpMV execution.

This module executes :class:`~repro.sched.base.Partition` objects for
real: each contiguous row range of the partition becomes a chunk whose
rows are preprocessed once (``csr.submatrix_rows`` + the wrapped
kernel's own ``preprocess``) and applied by a pool worker that writes a
*disjoint* slice of the shared output vector. Static kinds pin chunks
to their owning thread; ``kind == "dynamic"`` partitions are executed
through a shared chunk queue, so the thread that runs a chunk is decided
at execution time — exactly like an OpenMP ``schedule(dynamic)`` loop.

Numerics are bit-identical to the serial kernels by construction: every
chunk is a contiguous row range, a row's sum is computed by exactly one
chunk from that row's own nonzeros in their stored order, and each
result lands in its own ``out`` slice — no cross-thread reduction ever
happens (long rows are still handled *inside* a chunk by whatever
kernel variant is wrapped, e.g. decomposed CSR).

Two measured clocks are recorded per worker:

* ``thread_wall_seconds`` — ``perf_counter`` span of the worker's
  chunk loop; on an oversubscribed host this includes time spent
  descheduled, so it is the honest makespan contribution;
* ``thread_cpu_seconds`` — ``time.thread_time`` (per-thread CPU time),
  which counts only cycles the thread actually burned. This is the
  analogue of the paper's per-thread execution times in the ``P_IMB``
  bound and is robust to GIL/CPU contention, so measured-vs-predicted
  imbalance comparisons use it (see docs/parallelism.md).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass

import numpy as np

from ..errors import ChunkFailure, ParallelExecutionError
from ..formats import CSRMatrix
from ..formats.base import (
    check_out_buffer,
    contiguous_operand,
    trust_out_buffer,
)
from ..kernels.base import Kernel
from ..machine import KernelCost, MachineSpec
from ..memory import Workspace
from ..sched import Partition, make_partition
from .pool import get_executor

__all__ = [
    "ParallelConfig",
    "ParallelMeasurement",
    "ParallelData",
    "ParallelKernel",
    "ParallelSpMV",
]


@dataclass(frozen=True)
class ParallelConfig:
    """Declarative parallel-execution configuration.

    Folded into plan-cache keys (see
    :meth:`repro.core.optimizer.AdaptiveSpMV`) so plans tuned for one
    thread count / schedule are never reused for another.
    """

    nthreads: int
    schedule: str = "balanced-nnz"
    chunk_rows: int | None = None

    def __post_init__(self) -> None:
        if int(self.nthreads) < 1:
            raise ValueError(
                f"nthreads must be >= 1, got {self.nthreads}"
            )

    def signature(self) -> str:
        """Stable string folded into cache keys."""
        return (
            f"parallel:nthreads={int(self.nthreads)}"
            f",schedule={self.schedule}"
            f",chunk_rows={self.chunk_rows if self.chunk_rows else 'auto'}"
        )


@dataclass(frozen=True)
class ParallelMeasurement:
    """Measured per-thread clocks of one parallel apply."""

    nthreads: int
    schedule: str
    dynamic: bool
    wall_seconds: float                  # makespan of the whole apply
    thread_wall_seconds: tuple[float, ...]
    thread_cpu_seconds: tuple[float, ...]
    chunks_per_thread: tuple[int, ...]

    @staticmethod
    def _imbalance(times: tuple[float, ...]) -> float:
        arr = np.asarray(times, dtype=np.float64)
        if arr.size == 0:
            return 1.0
        mean = float(arr.mean())
        if mean <= 0.0:
            return 1.0
        return float(arr.max() / mean)

    @property
    def imbalance(self) -> float:
        """Measured load imbalance ``max/mean`` over per-thread CPU
        times — the empirical counterpart of the analytical engine's
        :attr:`~repro.machine.engine.RunResult.imbalance`."""
        return self._imbalance(self.thread_cpu_seconds)

    @property
    def wall_imbalance(self) -> float:
        """``max/mean`` over per-thread wall spans (includes scheduler
        and GIL waits; noisy on oversubscribed hosts)."""
        return self._imbalance(self.thread_wall_seconds)

    def stragglers(self, factor: float = 4.0) -> tuple[int, ...]:
        """Worker slots whose wall span exceeded ``factor`` times the
        median positive wall span — threads that *finished* but dragged
        the makespan (a chunk that never finishes surfaces as a
        ``timeout`` :class:`~repro.errors.ChunkFailure` via the
        deadline watchdog instead)."""
        walls = np.asarray(self.thread_wall_seconds, dtype=np.float64)
        positive = walls[walls > 0.0]
        if positive.size == 0:
            return ()
        median = float(np.median(positive))
        if median <= 0.0:
            return ()
        return tuple(
            int(i) for i in np.flatnonzero(walls > factor * median)
        )

    def summary(self) -> dict:
        """JSON-ready snapshot (tracer spans, bench rows)."""
        return {
            "nthreads": int(self.nthreads),
            "schedule": self.schedule,
            "dynamic": bool(self.dynamic),
            "wall_seconds": float(self.wall_seconds),
            "thread_wall_seconds": [float(t) for t in
                                    self.thread_wall_seconds],
            "thread_cpu_seconds": [float(t) for t in
                                   self.thread_cpu_seconds],
            "chunks_per_thread": [int(c) for c in self.chunks_per_thread],
            "imbalance": float(self.imbalance),
            "wall_imbalance": float(self.wall_imbalance),
            "stragglers": [int(s) for s in self.stragglers()],
        }


def _align_runs(runs: list[tuple[int, int, int]], align: int,
                nrows: int) -> list[tuple[int, int, int]]:
    """Snap run boundaries down to multiples of ``align``.

    Blocked/sorted execution formats (BCSR, SELL-C-sigma) regroup rows
    at a fixed granularity; splitting anywhere else changes their
    floating-point association. Interior cuts move down to the nearest
    ``align`` multiple (runs swallowed whole disappear), the final cut
    stays at ``nrows`` — so the cover is exact and every chunk's local
    regrouping reproduces the serial one bit-for-bit.
    """
    snapped: list[tuple[int, int, int]] = []
    prev = 0
    for _, hi, tid in runs:
        cut = nrows if hi == nrows else (hi // align) * align
        if cut <= prev:
            continue
        snapped.append((prev, cut, tid))
        prev = cut
    if prev < nrows:
        if snapped:
            lo, _, tid = snapped[-1]
            snapped[-1] = (lo, nrows, tid)
        else:
            snapped.append((0, nrows, runs[-1][2] if runs else 0))
    return snapped


def _partition_from_runs(runs: list[tuple[int, int, int]],
                         original: Partition
                         ) -> tuple[Partition, list[tuple[int, int, int]]]:
    """Rebuild a consistent :class:`Partition` after boundary snapping,
    renumbering surviving thread ids so they stay contiguous/leading.
    Returns the partition plus the runs rewritten with the new ids."""
    nrows = original.nrows
    remap: dict[int, int] = {}
    tor = np.empty(nrows, dtype=np.int32)
    renumbered = []
    for lo, hi, tid in runs:
        new = remap.setdefault(tid, len(remap))
        tor[lo:hi] = new
        renumbered.append((lo, hi, new))
    nthreads = max(1, len(remap))
    boundaries = None
    if original.boundaries is not None:
        boundaries = np.array(
            sorted({0, nrows} | {hi for _, hi, _ in runs}), dtype=np.int64
        )
    partition = Partition(nthreads, tor, kind=original.kind,
                          chunk_rows=original.chunk_rows,
                          boundaries=boundaries)
    return partition, renumbered


class _Chunk:
    """One contiguous row range, preprocessed for the wrapped kernel."""

    __slots__ = ("lo", "hi", "tid", "data")

    def __init__(self, lo: int, hi: int, tid: int, data):
        self.lo = lo
        self.hi = hi
        self.tid = tid
        self.data = data


class ParallelData:
    """Execution bundle of a :class:`ParallelKernel`: the partition, the
    per-chunk preprocessed row blocks, and a thread-local workspace."""

    __slots__ = ("csr", "partition", "chunks", "thread_chunks",
                 "workspace", "_full_data")

    def __init__(self, csr: CSRMatrix, partition: Partition,
                 chunks: list[_Chunk]):
        self.csr = csr
        self.partition = partition
        self.chunks = chunks
        # Chunk indices per owning thread, in row order (static seed
        # assignment; the dynamic path ignores ownership).
        self.thread_chunks: list[list[int]] = [
            [] for _ in range(partition.nthreads)
        ]
        for ci, chunk in enumerate(chunks):
            self.thread_chunks[chunk.tid].append(ci)
        self.workspace = Workspace(thread_local=True)
        self._full_data = None

    @property
    def nthreads(self) -> int:
        return self.partition.nthreads

    @property
    def nrows(self) -> int:
        return self.csr.nrows

    @property
    def ncols(self) -> int:
        return self.csr.ncols

    def full_data(self, kernel: Kernel):
        """The wrapped kernel's whole-matrix data (cost plane only),
        built lazily so pure numeric use never pays for it."""
        if self._full_data is None:
            self._full_data = kernel.preprocess(self.csr)
        return self._full_data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelData {self.partition.kind} t={self.nthreads} "
            f"chunks={len(self.chunks)} {self.csr!r}>"
        )


class ParallelKernel(Kernel):
    """Execute any wrapped :class:`~repro.kernels.base.Kernel` on a
    thread pool, one contiguous row block per task.

    Composes with :class:`~repro.engine.guard.GuardedKernel` in both
    orders: ``GuardedKernel(ParallelKernel(k))`` guards the whole
    parallel apply (a worker exception propagates out and triggers the
    serial CSR fallback), while ``ParallelKernel(GuardedKernel(k))``
    guards each row block individually.
    """

    def __init__(self, inner: Kernel, nthreads: int,
                 schedule: str | None = None,
                 chunk_rows: int | None = None):
        if int(nthreads) < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        self.inner = inner
        self.nthreads = int(nthreads)
        self.schedule = schedule or getattr(inner, "schedule",
                                            "balanced-nnz")
        self.chunk_rows = chunk_rows
        self.name = f"{inner.name}@par/{self.schedule}/t{self.nthreads}"
        self.optimizations = tuple(getattr(inner, "optimizations", ())) + (
            "parallel",
        )
        #: measurement of the most recent apply/apply_multi.
        self.last_measurement: ParallelMeasurement | None = None

    @property
    def config(self) -> ParallelConfig:
        return ParallelConfig(self.nthreads, self.schedule, self.chunk_rows)

    # -- preprocessing -------------------------------------------------

    def preprocess(self, csr: CSRMatrix) -> ParallelData:
        kwargs = {}
        if self.chunk_rows is not None:
            kwargs["chunk_rows"] = self.chunk_rows
        partition = make_partition(csr, self.nthreads, self.schedule,
                                   **kwargs)
        align = int(getattr(self.inner, "row_align", 1) or 1)
        runs = partition.contiguous_runs()
        if align > 1:
            runs = _align_runs(runs, align, csr.nrows)
            partition, runs = _partition_from_runs(runs, partition)
        chunks = [
            _Chunk(lo, hi, tid,
                   self.inner.preprocess(csr.submatrix_rows(lo, hi)))
            for lo, hi, tid in runs
        ]
        return ParallelData(csr, partition, chunks)

    def preprocessing_seconds(self, csr: CSRMatrix,
                              machine: MachineSpec) -> float:
        return self.inner.preprocessing_seconds(csr, machine)

    # -- numeric plane -------------------------------------------------

    def apply(self, data: ParallelData, x: np.ndarray,
              out: np.ndarray | None = None, workspace=None,
              deadline_seconds: float | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (data.ncols,):
            raise ValueError(
                f"x must have shape ({data.ncols},), got {x.shape}"
            )
        if out is None:
            y = np.empty(data.nrows, dtype=np.float64)
        else:
            y = check_out_buffer(out, (data.nrows,), operand=x)
        x = contiguous_operand(x, workspace, "parallel.x")
        # Validate once here; each chunk's y[lo:hi] slice stays a
        # trusted view, so the inner kernel skips re-validating the
        # same buffer nthreads times per apply.
        self._supervised(data, x, trust_out_buffer(y), multi=False,
                         caller_out=out is not None,
                         deadline_seconds=deadline_seconds)
        return y

    def apply_multi(self, data: ParallelData, X: np.ndarray,
                    out: np.ndarray | None = None,
                    workspace=None,
                    deadline_seconds: float | None = None) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != data.ncols:
            raise ValueError(
                f"X must have shape ({data.ncols}, k), got {X.shape}"
            )
        k = X.shape[1]
        if out is None:
            Y = np.empty((data.nrows, k), dtype=np.float64)
        else:
            Y = check_out_buffer(out, (data.nrows, k), operand=X)
        self._supervised(data, X, trust_out_buffer(Y), multi=True,
                         caller_out=out is not None,
                         deadline_seconds=deadline_seconds)
        return Y

    def _supervised(self, data: ParallelData, x: np.ndarray,
                    y: np.ndarray, *, multi: bool, caller_out: bool,
                    deadline_seconds: float | None) -> np.ndarray:
        """Run ``_execute`` with the out-buffer safety contract.

        A caller-owned ``out`` is never returned partially written: on
        any :class:`~repro.errors.ParallelExecutionError` it is
        NaN-invalidated before the error escapes. When a deadline is
        armed the chunks additionally compute into private scratch —
        a breached deadline abandons still-running workers, and those
        must never race a buffer the caller can still observe — with
        one ``copyto`` into ``out`` only on success.
        """
        target = y
        if deadline_seconds is not None and caller_out:
            target = np.empty_like(y)
        try:
            self._execute(data, x, target, multi=multi,
                          deadline_seconds=deadline_seconds)
        except ParallelExecutionError:
            if caller_out:
                y.fill(np.nan)
            raise
        if target is not y:
            np.copyto(y, target)
        return y

    def _run_chunk(self, chunk: _Chunk, x: np.ndarray, y: np.ndarray,
                   *, multi: bool, workspace: Workspace) -> None:
        # y[lo:hi] is a C-contiguous view (leading-axis slice of a
        # C-contiguous array), disjoint from every other chunk's slice.
        out = y[chunk.lo : chunk.hi]
        if multi:
            self.inner.apply_multi(chunk.data, x, out=out,
                                   workspace=workspace)
        else:
            self.inner.apply(chunk.data, x, out=out, workspace=workspace)

    def _execute(self, data: ParallelData, x: np.ndarray,
                 y: np.ndarray, *, multi: bool,
                 deadline_seconds: float | None = None
                 ) -> ParallelMeasurement:
        nthreads = data.nthreads
        started = time.perf_counter()
        walls = [0.0] * nthreads
        cpus = [0.0] * nthreads
        counts = [0] * nthreads
        # Supervision state: per-chunk failures with attribution, a
        # cooperative cancel flag (set on first failure or deadline
        # breach; workers check it between chunks), and the chunk each
        # slot is currently executing (for timeout attribution).
        failures: list[ChunkFailure] = []
        cancel = threading.Event()
        current = [-1] * nthreads

        def run_chunks(slot: int, indices) -> None:
            w0 = time.perf_counter()
            c0 = time.thread_time()
            try:
                for ci in indices:
                    if cancel.is_set():
                        break
                    chunk = data.chunks[ci]
                    current[slot] = ci
                    try:
                        self._run_chunk(chunk, x, y, multi=multi,
                                        workspace=data.workspace)
                    except Exception as exc:
                        failures.append(ChunkFailure(
                            chunk_index=ci, row_lo=chunk.lo,
                            row_hi=chunk.hi, thread_slot=slot,
                            kind="exception",
                            detail=f"{type(exc).__name__}: {exc}",
                        ))
                        cancel.set()
                        break
                    counts[slot] += 1
            finally:
                current[slot] = -1
                cpus[slot] = time.thread_time() - c0
                walls[slot] = time.perf_counter() - w0

        if data.partition.is_dynamic:
            queue = deque(range(len(data.chunks)))

            def drain():
                while True:
                    try:
                        yield queue.popleft()  # thread-safe pop
                    except IndexError:
                        return

            def worker(slot: int) -> None:
                run_chunks(slot, drain())
        else:

            def worker(slot: int) -> None:
                run_chunks(slot, data.thread_chunks[slot])

        # A deadline always goes through the pool (even at one thread)
        # so the watchdog can abandon a hung chunk instead of blocking
        # the caller inline forever.
        if nthreads == 1 and deadline_seconds is None:
            worker(0)
        else:
            pool = get_executor(nthreads)
            futures = [pool.submit(worker, slot) for slot in range(nthreads)]
            if deadline_seconds is None:
                for future in futures:
                    future.result()  # chunk faults are captured; this
                    # only propagates errors in the worker loop itself
            else:
                remaining = deadline_seconds - (
                    time.perf_counter() - started
                )
                done, not_done = futures_wait(
                    futures, timeout=max(remaining, 0.0)
                )
                if not_done:
                    cancel.set()
                    for future in not_done:
                        future.cancel()  # unstarted workers never run
                    timeouts = []
                    for slot, future in enumerate(futures):
                        if future not in not_done:
                            continue
                        ci = current[slot]
                        if ci >= 0:
                            chunk = data.chunks[ci]
                            timeouts.append(ChunkFailure(
                                chunk_index=ci, row_lo=chunk.lo,
                                row_hi=chunk.hi, thread_slot=slot,
                                kind="timeout",
                                detail="chunk still running at deadline",
                            ))
                        else:
                            timeouts.append(ChunkFailure(
                                chunk_index=-1, row_lo=-1, row_hi=-1,
                                thread_slot=slot, kind="timeout",
                                detail="worker unfinished at deadline",
                            ))
                    raise ParallelExecutionError(
                        "deadline", tuple(failures) + tuple(timeouts),
                        nthreads=nthreads, schedule=self.schedule,
                        wall_seconds=time.perf_counter() - started,
                        deadline_seconds=deadline_seconds,
                    )
                for future in futures:
                    future.result()

        if failures:
            raise ParallelExecutionError(
                "worker-fault", tuple(failures),
                nthreads=nthreads, schedule=self.schedule,
                wall_seconds=time.perf_counter() - started,
                deadline_seconds=deadline_seconds,
            )

        measurement = ParallelMeasurement(
            nthreads=nthreads,
            schedule=self.schedule,
            dynamic=data.partition.is_dynamic,
            wall_seconds=time.perf_counter() - started,
            thread_wall_seconds=tuple(walls),
            thread_cpu_seconds=tuple(cpus),
            chunks_per_thread=tuple(counts),
        )
        self.last_measurement = measurement
        return measurement

    # -- cost plane & scheduling --------------------------------------

    def cost(self, data: ParallelData, machine: MachineSpec,
             partition: Partition) -> KernelCost:
        return self.inner.cost(data.full_data(self.inner), machine,
                               partition)

    def partition(self, data: ParallelData, nthreads: int) -> Partition:
        if int(nthreads) == self.nthreads:
            return data.partition
        kwargs = {}
        if self.chunk_rows is not None:
            kwargs["chunk_rows"] = self.chunk_rows
        return make_partition(data.csr, nthreads, self.schedule, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelKernel t={self.nthreads} {self.schedule!r} "
            f"{self.inner!r}>"
        )


class ParallelSpMV:
    """Operator facade over :class:`ParallelKernel` for solver loops.

    Exposes the same ``matvec(x, out=, workspace=)`` /
    ``matmat(X, out=, workspace=)`` surface as the sparse formats, so
    :func:`repro.solvers.base.as_matvec_into` routes CG/GMRES hot-loop
    matvecs through the thread pool with zero solver changes — and
    bit-identical residual histories, because chunked execution
    preserves the serial reduction order.
    """

    def __init__(self, csr: CSRMatrix, kernel: Kernel | None = None, *,
                 nthreads: int, schedule: str = "balanced-nnz",
                 chunk_rows: int | None = None, guard: bool = False):
        if kernel is None:
            from ..kernels.variants import baseline_kernel

            kernel = baseline_kernel()
        if guard:
            from ..engine.layers import GuardLayer

            kernel = GuardLayer().wrap(kernel)
        self.csr = csr
        self.kernel = ParallelKernel(kernel, nthreads=nthreads,
                                     schedule=schedule,
                                     chunk_rows=chunk_rows)
        self.data = self.kernel.preprocess(csr)

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nthreads(self) -> int:
        return self.data.nthreads

    @property
    def partition(self) -> Partition:
        return self.data.partition

    @property
    def last_measurement(self) -> ParallelMeasurement | None:
        return self.kernel.last_measurement

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None,
               workspace=None,
               deadline_seconds: float | None = None) -> np.ndarray:
        return self.kernel.apply(self.data, x, out=out,
                                 workspace=workspace,
                                 deadline_seconds=deadline_seconds)

    def matmat(self, X: np.ndarray, out: np.ndarray | None = None,
               workspace=None,
               deadline_seconds: float | None = None) -> np.ndarray:
        return self.kernel.apply_multi(self.data, X, out=out,
                                       workspace=workspace,
                                       deadline_seconds=deadline_seconds)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParallelSpMV {self.kernel!r} {self.csr!r}>"
