"""Compatibility shim: the supervised plane moved to the engine.

The implementation now lives in :mod:`repro.engine.supervision` as
:class:`~repro.engine.supervision.SupervisedExecutor`, composed by the
engine's :class:`~repro.engine.layers.SupervisionLayer`. This module
re-exports the historical names — including :class:`SupervisedSpMV`,
now a thin subclass — so ``from repro.parallel import SupervisedSpMV``
keeps working; new code should compose supervision through
``repro.engine.ExecutorSpec(parallel=..., supervision=...)`` instead of
instantiating the wrapper by hand.
"""

from __future__ import annotations

from ..engine.supervision import (
    AttemptRecord,
    SupervisedExecutor,
    SupervisionReport,
    clear_demotions,
    demoted_target,
    demotion_count,
    demotion_log,
    record_demotion,
)

__all__ = [
    "AttemptRecord",
    "SupervisionReport",
    "SupervisedSpMV",
    "record_demotion",
    "demoted_target",
    "demotion_count",
    "demotion_log",
    "clear_demotions",
]


class SupervisedSpMV(SupervisedExecutor):
    """Historical name of :class:`~repro.engine.supervision.
    SupervisedExecutor`; behavior (ladder, demotion registry, spans,
    numerics) is identical."""
