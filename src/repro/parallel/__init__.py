"""Real shared-memory parallel SpMV execution plane.

Executes :class:`~repro.sched.base.Partition` objects on a persistent
:class:`~concurrent.futures.ThreadPoolExecutor` (NumPy's heavy kernels
release the GIL), making the paper's IMB thread-imbalance analysis
*measurable* instead of only simulated: the analytical engine predicts
per-thread times, :class:`ParallelKernel` measures them. See
docs/parallelism.md.

:mod:`repro.parallel.supervisor` adds the serving-grade fault
tolerance on top: worker supervision with chunk attribution, deadline
watchdogs, and the retry/degrade/serial-fallback ladder of
:class:`SupervisedSpMV`. See docs/robustness.md.
"""

from .plane import (
    ParallelConfig,
    ParallelData,
    ParallelKernel,
    ParallelMeasurement,
    ParallelSpMV,
)
from .pool import (
    active_worker_counts,
    get_executor,
    pool_health,
    recycle_executor,
    shutdown_executors,
)
from .supervisor import (
    AttemptRecord,
    SupervisedSpMV,
    SupervisionReport,
    clear_demotions,
    demoted_target,
    demotion_count,
    demotion_log,
    record_demotion,
)

__all__ = [
    "ParallelConfig",
    "ParallelData",
    "ParallelKernel",
    "ParallelMeasurement",
    "ParallelSpMV",
    "SupervisedSpMV",
    "SupervisionReport",
    "AttemptRecord",
    "get_executor",
    "shutdown_executors",
    "active_worker_counts",
    "recycle_executor",
    "pool_health",
    "record_demotion",
    "demoted_target",
    "demotion_count",
    "demotion_log",
    "clear_demotions",
]
