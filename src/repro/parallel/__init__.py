"""Real shared-memory parallel SpMV execution plane.

Executes :class:`~repro.sched.base.Partition` objects on a persistent
:class:`~concurrent.futures.ThreadPoolExecutor` (NumPy's heavy kernels
release the GIL), making the paper's IMB thread-imbalance analysis
*measurable* instead of only simulated: the analytical engine predicts
per-thread times, :class:`ParallelKernel` measures them. See
docs/parallelism.md.
"""

from .plane import (
    ParallelConfig,
    ParallelData,
    ParallelKernel,
    ParallelMeasurement,
    ParallelSpMV,
)
from .pool import active_worker_counts, get_executor, shutdown_executors

__all__ = [
    "ParallelConfig",
    "ParallelData",
    "ParallelKernel",
    "ParallelMeasurement",
    "ParallelSpMV",
    "get_executor",
    "shutdown_executors",
    "active_worker_counts",
]
