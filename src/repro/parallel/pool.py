"""Persistent thread-pool management for the parallel execution plane.

A :class:`~concurrent.futures.ThreadPoolExecutor` is expensive to spin
up relative to one SpMV (thread creation is microseconds-to-
milliseconds; a chunk apply can be tens of microseconds), so executors
are created once per worker count and reused for the life of the
process — the same persistence argument the paper makes for OpenMP's
thread team. Pools are keyed by worker count: a solver iterating at
``nthreads=4`` keeps hitting the same four warm threads.

Threads (not processes) are the right substrate here because NumPy
releases the GIL inside its heavy inner loops (gather/multiply/
reduceat over large buffers), so row-block workers genuinely overlap;
see docs/parallelism.md.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["get_executor", "shutdown_executors", "active_worker_counts"]

_lock = threading.Lock()
_pools: dict[int, ThreadPoolExecutor] = {}


def get_executor(nworkers: int) -> ThreadPoolExecutor:
    """Return the shared persistent executor with ``nworkers`` threads."""
    nworkers = int(nworkers)
    if nworkers < 1:
        raise ValueError(f"nworkers must be >= 1, got {nworkers}")
    with _lock:
        pool = _pools.get(nworkers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=nworkers,
                thread_name_prefix=f"repro-par{nworkers}",
            )
            _pools[nworkers] = pool
        return pool


def shutdown_executors() -> None:
    """Shut down and forget every pooled executor (tests, atexit)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def active_worker_counts() -> tuple[int, ...]:
    """Worker counts with a live pooled executor (telemetry/tests)."""
    with _lock:
        return tuple(sorted(_pools))
