"""Persistent thread-pool management for the parallel execution plane.

A :class:`~concurrent.futures.ThreadPoolExecutor` is expensive to spin
up relative to one SpMV (thread creation is microseconds-to-
milliseconds; a chunk apply can be tens of microseconds), so executors
are created once per worker count and reused for the life of the
process — the same persistence argument the paper makes for OpenMP's
thread team. Pools are keyed by worker count: a solver iterating at
``nthreads=4`` keeps hitting the same four warm threads.

Threads (not processes) are the right substrate here because NumPy
releases the GIL inside its heavy inner loops (gather/multiply/
reduceat over large buffers), so row-block workers genuinely overlap;
see docs/parallelism.md.

Pools are additionally *supervised*: a cached executor whose threads
have all died (interpreter-level failures, a stray ``shutdown`` from
test teardown, fork aftermath) is recycled on the next
:func:`get_executor` instead of being handed out broken, the deadline
watchdog retires pools with abandoned hung workers via
:func:`recycle_executor`, and :func:`pool_health` exposes per-pool
liveness for telemetry and tests (see docs/robustness.md).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "get_executor",
    "shutdown_executors",
    "active_worker_counts",
    "recycle_executor",
    "pool_health",
]

_lock = threading.Lock()
_pools: dict[int, ThreadPoolExecutor] = {}


def _broken(pool: ThreadPoolExecutor) -> bool:
    """True when a cached executor can no longer run work.

    Inspects executor internals (``_shutdown``, ``_threads``): a pool
    is unusable once shut down, or when it has started threads and
    every one of them has died — submitted work would queue forever.
    A fresh pool that has not spawned threads yet (they are created
    lazily on first submit) is healthy.
    """
    if pool._shutdown:
        return True
    threads = list(pool._threads)
    return bool(threads) and not any(t.is_alive() for t in threads)


def _retire(pool: ThreadPoolExecutor) -> None:
    """Shut a pool down without waiting (it may hold hung workers)."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown is best-effort
        pass


def get_executor(nworkers: int) -> ThreadPoolExecutor:
    """Return the shared persistent executor with ``nworkers`` threads.

    A cached executor that went broken since the last call (threads
    dead, or shut down behind our back) is retired and transparently
    replaced with a fresh one — callers never receive a pool that
    silently queues work forever.
    """
    nworkers = int(nworkers)
    if nworkers < 1:
        raise ValueError(f"nworkers must be >= 1, got {nworkers}")
    with _lock:
        pool = _pools.get(nworkers)
        if pool is not None and _broken(pool):
            _retire(pool)
            pool = None
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=nworkers,
                thread_name_prefix=f"repro-par{nworkers}",
            )
            _pools[nworkers] = pool
        return pool


def recycle_executor(nworkers: int) -> bool:
    """Force-retire the pooled executor for ``nworkers`` workers.

    Used by the deadline watchdog after abandoning hung chunks: the
    old pool (whose workers may still be stuck inside a chunk) is shut
    down without waiting, and the next :func:`get_executor` at this
    width builds a fresh team. Returns whether a pool existed.
    """
    with _lock:
        pool = _pools.pop(int(nworkers), None)
    if pool is None:
        return False
    _retire(pool)
    return True


def pool_health() -> dict[int, dict]:
    """Liveness snapshot of every pooled executor (telemetry/tests).

    Maps worker count to ``{"expected", "started", "alive",
    "shutdown", "healthy"}`` — ``started`` counts threads the lazy
    executor has actually spawned so far, ``alive`` how many of those
    are still running, and ``healthy`` whether :func:`get_executor`
    would hand this pool out as-is.
    """
    with _lock:
        pools = dict(_pools)
    health: dict[int, dict] = {}
    for n, pool in pools.items():
        threads = list(pool._threads)
        health[n] = {
            "expected": n,
            "started": len(threads),
            "alive": sum(1 for t in threads if t.is_alive()),
            "shutdown": bool(pool._shutdown),
            "healthy": not _broken(pool),
        }
    return health


def shutdown_executors() -> None:
    """Shut down and forget every pooled executor (tests, atexit)."""
    with _lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def active_worker_counts() -> tuple[int, ...]:
    """Worker counts with a live pooled executor (telemetry/tests)."""
    with _lock:
        return tuple(sorted(_pools))
