"""Thread scheduling / row partitioning (system S5 in DESIGN.md)."""

from .base import Partition
from .policies import (
    SCHEDULE_POLICIES,
    auto_chunked,
    balanced_nnz,
    best_policy,
    dynamic_chunks,
    make_partition,
    rank_policies,
    static_rows,
)

__all__ = [
    "Partition",
    "static_rows",
    "balanced_nnz",
    "auto_chunked",
    "dynamic_chunks",
    "make_partition",
    "rank_policies",
    "best_policy",
    "SCHEDULE_POLICIES",
]
