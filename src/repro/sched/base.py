"""Work partitioning of SpMV rows across threads.

A :class:`Partition` maps every row to the thread that executes it.
The cost model aggregates per-row cost arrays to per-thread totals via
:meth:`Partition.thread_sums`, so any assignment expressible as a
row->thread map works (contiguous blocks, round-robin chunks, ...).

``kind == "dynamic"`` is special: it represents a work-stealing runtime
whose assignment is made *at execution time*. The engine treats it as
near-perfectly balanced modulo per-chunk scheduling overhead (see
:mod:`repro.machine.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """Assignment of matrix rows to ``nthreads`` executing threads."""

    nthreads: int
    thread_of_row: np.ndarray          # int32, len == nrows
    kind: str = "static"
    chunk_rows: int = 0                # granularity, for overhead accounting
    boundaries: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {self.nthreads}")
        tor = np.ascontiguousarray(self.thread_of_row, dtype=np.int32)
        object.__setattr__(self, "thread_of_row", tor)
        if tor.size and (tor.min() < 0 or tor.max() >= self.nthreads):
            raise ValueError("thread_of_row entries out of range")

    @property
    def nrows(self) -> int:
        return int(self.thread_of_row.size)

    @property
    def is_dynamic(self) -> bool:
        return self.kind == "dynamic"

    def thread_sums(self, per_row: np.ndarray) -> np.ndarray:
        """Aggregate a per-row quantity to per-thread totals."""
        per_row = np.asarray(per_row, dtype=np.float64)
        if per_row.shape != (self.nrows,):
            raise ValueError(
                f"per_row must have shape ({self.nrows},), got {per_row.shape}"
            )
        return np.bincount(
            self.thread_of_row, weights=per_row, minlength=self.nthreads
        )

    def rows_of_thread(self, tid: int) -> np.ndarray:
        """Row indices executed by thread ``tid`` (ascending)."""
        if not 0 <= tid < self.nthreads:
            raise ValueError(f"tid out of range: {tid}")
        return np.flatnonzero(self.thread_of_row == tid)

    def n_chunks(self) -> int:
        """Number of contiguous assignment chunks (scheduling quanta)."""
        if self.nrows == 0:
            return 0
        return int(1 + np.count_nonzero(np.diff(self.thread_of_row) != 0))

    def contiguous_runs(self) -> list[tuple[int, int, int]]:
        """Maximal contiguous row ranges with a single owner thread.

        Returns ``(lo, hi, tid)`` triples covering ``[0, nrows)`` in
        order; each range ``[lo, hi)`` is executed by thread ``tid``.
        This is the execution unit of the real parallel plane
        (:mod:`repro.parallel`): contiguous ranges preserve the serial
        per-row reduction order, so chunked execution stays
        bit-identical to a single-thread sweep.
        """
        tor = self.thread_of_row
        if tor.size == 0:
            return []
        cuts = np.flatnonzero(np.diff(tor)) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [tor.size]))
        return [
            (int(lo), int(hi), int(tor[lo]))
            for lo, hi in zip(starts, stops)
        ]

    def validate_covers(self, nrows: int) -> None:
        """Assert the partition covers exactly ``nrows`` rows."""
        if self.nrows != nrows:
            raise ValueError(
                f"partition covers {self.nrows} rows, matrix has {nrows}"
            )
