"""Row-partitioning policies.

The paper's baseline and optimized kernels use "a static one-dimensional
row partitioning scheme, where each partition has approximately equal
number of nonzero elements" (:func:`balanced_nnz`). The IMB class adds
the OpenMP ``auto`` schedule (:func:`auto_chunked`, modeled as
round-robin chunks, which is what practical compilers fall back to) and
a dynamic work-stealing policy for ablations.

Degenerate shapes are normalized rather than passed through: every
policy clamps its *effective* thread count to the available work
(``min(nthreads, nonempty rows)``, floor 1), so asking for 16 threads
on a 5-row matrix yields a 5-thread partition with contiguous, leading
thread ids instead of scattering rows over arbitrary ids or collapsing
everything onto thread 0. A matrix with zero nonzeros always maps all
rows to one thread with boundaries ``[0, nrows]``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..formats import CSRMatrix
from .base import Partition

__all__ = [
    "static_rows",
    "balanced_nnz",
    "auto_chunked",
    "dynamic_chunks",
    "make_partition",
    "rank_policies",
    "best_policy",
    "SCHEDULE_POLICIES",
]


def _nonempty_rows(csr: CSRMatrix) -> int:
    """Number of rows with at least one stored nonzero."""
    return int(np.count_nonzero(np.diff(csr.rowptr)))


def _effective_threads(nthreads: int, csr: CSRMatrix) -> int:
    """Clamp the requested thread count to the rows that carry work.

    More threads than nonzero-carrying rows cannot reduce the critical
    path (a row is never split), they only create idle workers and —
    before this clamp — scattered or collapsed assignments that skewed
    the simulated imbalance. Floor 1 so empty matrices still partition.
    """
    return max(1, min(int(nthreads), _nonempty_rows(csr)))


def static_rows(nrows: int, nthreads: int) -> Partition:
    """Equal *row counts* per thread, contiguous blocks.

    The naive OpenMP ``schedule(static)`` on the row loop: ignores row
    lengths entirely, so skewed matrices imbalance badly. The effective
    thread count is clamped to ``min(nthreads, nrows)`` (this policy
    never sees nnz counts, so it clamps on rows, not nonempty rows).
    """
    check_positive("nthreads", nthreads)
    nthreads = max(1, min(int(nthreads), int(nrows)))
    bounds = np.linspace(0, nrows, nthreads + 1).astype(np.int64)
    thread_of_row = np.repeat(
        np.arange(nthreads, dtype=np.int32), np.diff(bounds)
    )
    return Partition(nthreads, thread_of_row, kind="static-rows",
                     boundaries=bounds)


def balanced_nnz(csr: CSRMatrix, nthreads: int) -> Partition:
    """Equal *nonzero counts* per thread, contiguous blocks (paper default).

    Boundaries are placed by binary search on the cumulative nonzero
    counts; a row is never split, so a single huge row still lands on a
    single thread — exactly the residual imbalance the decomposition
    optimization targets. The effective thread count is clamped to the
    nonempty rows (degenerate oversubscription), and duplicate
    boundaries caused by monster rows are repaired so every surviving
    thread owns at least one row — the thread count itself is
    preserved, keeping the modeled per-thread aggregates comparable
    across matrices while the real executor never sees a thread with
    an empty row range.
    """
    check_positive("nthreads", nthreads)
    nrows = csr.nrows
    if nrows == 0:
        return Partition(1, np.empty(0, dtype=np.int32), kind="balanced-nnz",
                         boundaries=np.array([0, 0], dtype=np.int64))
    if csr.nnz == 0:
        # searchsorted on a flat rowptr would put every boundary at 0;
        # defined behavior instead: all rows on thread 0.
        return Partition(1, np.zeros(nrows, dtype=np.int32),
                         kind="balanced-nnz",
                         boundaries=np.array([0, nrows], dtype=np.int64))
    neff = _effective_threads(nthreads, csr)
    targets = np.linspace(0, csr.nnz, neff + 1)
    bounds = np.searchsorted(csr.rowptr, targets, side="left").astype(np.int64)
    bounds[0], bounds[-1] = 0, nrows
    bounds = np.maximum.accumulate(bounds)
    # Repair duplicate boundaries into strictly increasing ones:
    # shifting by the index turns "strictly increasing" into
    # "non-decreasing", which maximum.accumulate enforces; the clip
    # keeps the tail inside the matrix. Feasible because
    # neff <= nonempty rows <= nrows.
    shift = np.arange(neff + 1, dtype=np.int64)
    bounds = np.minimum(
        np.maximum.accumulate(bounds - shift), nrows - neff
    ) + shift
    thread_of_row = np.repeat(
        np.arange(neff, dtype=np.int32), np.diff(bounds)
    )
    return Partition(neff, thread_of_row, kind="balanced-nnz",
                     boundaries=bounds)


def _chunked(csr: CSRMatrix, nthreads: int, chunk_rows: int | None,
             *, kind: str, divisor: int, floor: int) -> Partition:
    """Shared round-robin chunk assignment for auto/dynamic schedules."""
    check_positive("nthreads", nthreads)
    nrows = csr.nrows
    neff = _effective_threads(nthreads, csr)
    if chunk_rows is None:
        # Automatic granularity. The clamp to nrows // neff guarantees
        # at least neff chunks, so every effective thread receives work
        # (before it, small matrices collapsed onto thread 0 because
        # the floor exceeded the whole matrix).
        chunk_rows = int(max(nrows // (neff * divisor), floor))
        if nrows >= neff > 0:
            chunk_rows = min(chunk_rows, nrows // neff)
    chunk_rows = max(int(chunk_rows), 1)
    chunk_ids = np.arange(nrows, dtype=np.int64) // chunk_rows
    nchunks = int(chunk_ids[-1]) + 1 if nrows else 0
    # An explicit oversized chunk_rows can still yield fewer chunks
    # than threads; shrink the thread count so ids stay leading.
    neff = max(1, min(neff, nchunks)) if nrows else 1
    thread_of_row = (chunk_ids % neff).astype(np.int32)
    return Partition(neff, thread_of_row, kind=kind, chunk_rows=chunk_rows)


def auto_chunked(csr: CSRMatrix, nthreads: int,
                 chunk_rows: int | None = None) -> Partition:
    """OpenMP ``auto`` schedule analogue: round-robin chunks of rows.

    The paper delegates the mapping to the compiler; Intel's runtime in
    practice picks a chunked scheme. Interleaving chunks across threads
    averages out *computational unevenness* (regions with different
    sparsity), the second IMB subcategory.
    """
    return _chunked(csr, nthreads, chunk_rows, kind="auto",
                    divisor=16, floor=8)


def dynamic_chunks(csr: CSRMatrix, nthreads: int,
                   chunk_rows: int | None = None) -> Partition:
    """Work-stealing dynamic schedule (ablation baseline).

    The row->thread map records the static round-robin *seed*
    assignment, but ``kind == "dynamic"`` tells the engine (and the
    real parallel plane in :mod:`repro.parallel`) to rebalance chunks
    across threads at execution time, charging a per-chunk dispatch
    overhead.
    """
    return _chunked(csr, nthreads, chunk_rows, kind="dynamic",
                    divisor=32, floor=4)


SCHEDULE_POLICIES = {
    "static-rows": lambda csr, t: static_rows(csr.nrows, t),
    "balanced-nnz": balanced_nnz,
    "auto": auto_chunked,
    "dynamic": dynamic_chunks,
}


def make_partition(csr: CSRMatrix, nthreads: int, policy: str = "balanced-nnz",
                   **kwargs) -> Partition:
    """Build a partition by policy name."""
    try:
        factory = SCHEDULE_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown schedule policy {policy!r}; "
            f"available: {sorted(SCHEDULE_POLICIES)}"
        ) from None
    return factory(csr, nthreads, **kwargs) if kwargs else factory(csr, nthreads)


def rank_policies(csr: CSRMatrix, model, nthreads: int, kernel=None,
                  *, policies=None, data=None):
    """Rank schedule policies by the cost model's predicted makespan.

    Builds one partition per policy and asks ``model`` (any
    :class:`~repro.model.base.CostModel`) to predict the same kernel on
    each; returns ``[(name, Prediction), ...]`` sorted fastest first.
    This replaces the ad-hoc "run the engine for each schedule and
    compare" loops: a calibrated model ranks with host-measured scales,
    the analytic model with the paper's cost planes — same code path.

    ``kernel`` defaults to the reference CSR kernel, ``data`` to its
    preprocessed form (pass both to amortize preprocessing across
    calls); ``policies`` restricts the candidate set.
    """
    from ..kernels import baseline_kernel  # sched must not import kernels at top level

    check_positive("nthreads", nthreads)
    if kernel is None:
        kernel = baseline_kernel()
    if data is None:
        data = kernel.preprocess(csr)
    names = tuple(policies) if policies is not None else tuple(SCHEDULE_POLICIES)
    unknown = [n for n in names if n not in SCHEDULE_POLICIES]
    if unknown:
        raise ValueError(
            f"unknown schedule policies {unknown!r}; "
            f"available: {sorted(SCHEDULE_POLICIES)}"
        )
    ranked = [
        (name,
         model.predict(kernel, data, make_partition(csr, nthreads, name),
                       nthreads=nthreads))
        for name in names
    ]
    ranked.sort(key=lambda item: item[1].seconds)
    return ranked


def best_policy(csr: CSRMatrix, model, nthreads: int, kernel=None,
                *, policies=None, data=None) -> str:
    """Name of the policy the model predicts fastest (see
    :func:`rank_policies`)."""
    return rank_policies(csr, model, nthreads, kernel,
                         policies=policies, data=data)[0][0]
