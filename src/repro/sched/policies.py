"""Row-partitioning policies.

The paper's baseline and optimized kernels use "a static one-dimensional
row partitioning scheme, where each partition has approximately equal
number of nonzero elements" (:func:`balanced_nnz`). The IMB class adds
the OpenMP ``auto`` schedule (:func:`auto_chunked`, modeled as
round-robin chunks, which is what practical compilers fall back to) and
a dynamic work-stealing policy for ablations.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive
from ..formats import CSRMatrix
from .base import Partition

__all__ = [
    "static_rows",
    "balanced_nnz",
    "auto_chunked",
    "dynamic_chunks",
    "make_partition",
    "SCHEDULE_POLICIES",
]


def static_rows(nrows: int, nthreads: int) -> Partition:
    """Equal *row counts* per thread, contiguous blocks.

    The naive OpenMP ``schedule(static)`` on the row loop: ignores row
    lengths entirely, so skewed matrices imbalance badly.
    """
    check_positive("nthreads", nthreads)
    bounds = np.linspace(0, nrows, nthreads + 1).astype(np.int64)
    thread_of_row = np.repeat(
        np.arange(nthreads, dtype=np.int32), np.diff(bounds)
    )
    return Partition(nthreads, thread_of_row, kind="static-rows",
                     boundaries=bounds)


def balanced_nnz(csr: CSRMatrix, nthreads: int) -> Partition:
    """Equal *nonzero counts* per thread, contiguous blocks (paper default).

    Boundaries are placed by binary search on the cumulative nonzero
    counts; a row is never split, so a single huge row still lands on a
    single thread — exactly the residual imbalance the decomposition
    optimization targets.
    """
    check_positive("nthreads", nthreads)
    targets = np.linspace(0, csr.nnz, nthreads + 1)
    bounds = np.searchsorted(csr.rowptr, targets, side="left").astype(np.int64)
    bounds[0], bounds[-1] = 0, csr.nrows
    bounds = np.maximum.accumulate(bounds)
    thread_of_row = np.repeat(
        np.arange(nthreads, dtype=np.int32), np.diff(bounds)
    )
    return Partition(nthreads, thread_of_row, kind="balanced-nnz",
                     boundaries=bounds)


def auto_chunked(csr: CSRMatrix, nthreads: int,
                 chunk_rows: int | None = None) -> Partition:
    """OpenMP ``auto`` schedule analogue: round-robin chunks of rows.

    The paper delegates the mapping to the compiler; Intel's runtime in
    practice picks a chunked scheme. Interleaving chunks across threads
    averages out *computational unevenness* (regions with different
    sparsity), the second IMB subcategory.
    """
    check_positive("nthreads", nthreads)
    nrows = csr.nrows
    if chunk_rows is None:
        chunk_rows = int(max(nrows // (nthreads * 16), 8))
    chunk_rows = max(int(chunk_rows), 1)
    chunk_ids = np.arange(nrows, dtype=np.int64) // chunk_rows
    thread_of_row = (chunk_ids % nthreads).astype(np.int32)
    return Partition(nthreads, thread_of_row, kind="auto",
                     chunk_rows=chunk_rows)


def dynamic_chunks(csr: CSRMatrix, nthreads: int,
                   chunk_rows: int | None = None) -> Partition:
    """Work-stealing dynamic schedule (ablation baseline).

    The row->thread map records the static round-robin *seed*
    assignment, but ``kind == "dynamic"`` tells the engine to rebalance
    per-thread times as a work-stealing runtime would, charging a
    per-chunk dispatch overhead.
    """
    check_positive("nthreads", nthreads)
    nrows = csr.nrows
    if chunk_rows is None:
        chunk_rows = int(max(nrows // (nthreads * 32), 4))
    chunk_rows = max(int(chunk_rows), 1)
    chunk_ids = np.arange(nrows, dtype=np.int64) // chunk_rows
    thread_of_row = (chunk_ids % nthreads).astype(np.int32)
    return Partition(nthreads, thread_of_row, kind="dynamic",
                     chunk_rows=chunk_rows)


SCHEDULE_POLICIES = {
    "static-rows": lambda csr, t: static_rows(csr.nrows, t),
    "balanced-nnz": balanced_nnz,
    "auto": auto_chunked,
    "dynamic": dynamic_chunks,
}


def make_partition(csr: CSRMatrix, nthreads: int, policy: str = "balanced-nnz",
                   **kwargs) -> Partition:
    """Build a partition by policy name."""
    try:
        factory = SCHEDULE_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown schedule policy {policy!r}; "
            f"available: {sorted(SCHEDULE_POLICIES)}"
        ) from None
    return factory(csr, nthreads, **kwargs) if kwargs else factory(csr, nthreads)
