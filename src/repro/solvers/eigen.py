"""Eigenvalue-flavored iterations (power method, PageRank).

The paper's introduction names "the approximation of eigenvalues of
large sparse matrices" as SpMV's second major consumer; these
SpMV-dominated iterations complete the solver suite and back the
PageRank example.
"""

from __future__ import annotations

import numpy as np

from .base import SolveResult, as_matvec

__all__ = ["power_iteration", "pagerank"]


def power_iteration(
    A,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-10,
    maxiter: int = 1000,
    seed: int = 0,
) -> tuple[float, SolveResult]:
    """Dominant eigenvalue/eigenvector by the power method.

    Returns ``(eigenvalue, SolveResult)`` where ``SolveResult.x`` is the
    unit eigenvector estimate and ``residual_norm`` is
    ``||A v - lambda v||``.
    """
    probe = as_matvec(A)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if x0 is None:
        # size discovery: require an operator with .shape or a first x0
        n = getattr(A, "shape", (None, None))[0]
        if n is None:
            raise ValueError("x0 required for bare-callable operators")
        x = np.random.default_rng(seed).standard_normal(n)
    else:
        x = np.array(x0, dtype=np.float64, copy=True)
    x /= np.linalg.norm(x)
    lam = 0.0
    history = []
    for k in range(1, maxiter + 1):
        y = probe(x)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0, SolveResult(
                x=x, converged=True, iterations=k, residual_norm=0.0,
                residual_history=np.array(history),
            )
        v = y / norm
        lam = float(x @ y)            # Rayleigh quotient (x is unit)
        resid = float(np.linalg.norm(y - lam * x))
        history.append(resid)
        x = v
        if resid <= tol * max(abs(lam), 1e-300):
            return lam, SolveResult(
                x=x, converged=True, iterations=k, residual_norm=resid,
                residual_history=np.array(history),
            )
    return lam, SolveResult(
        x=x, converged=False, iterations=maxiter,
        residual_norm=history[-1] if history else np.inf,
        residual_history=np.array(history),
    )


def pagerank(
    A,
    nrows: int,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    maxiter: int = 500,
    personalization: np.ndarray | None = None,
) -> SolveResult:
    """Power-iteration PageRank on a (column-normalized) operator.

    ``A`` must implement the rank-flow product (``A @ r`` spreads rank
    along in-links); dangling mass and teleportation are folded in as
    the usual uniform correction.

    ``personalization`` biases the teleport step: a ``(nrows,)`` vector
    gives a single personalized ranking, a ``(nrows, k)`` matrix runs
    ``k`` personalized rankings *simultaneously* through the operator's
    batched ``matmat`` plane — one SpMM per power step serves all
    seeds, which is how per-seed ranking services batch their traffic.
    Teleport vectors are normalized to sum 1 per column.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    if personalization is not None:
        return _personalized_pagerank(
            A, nrows, np.asarray(personalization, dtype=np.float64),
            damping=damping, tol=tol, maxiter=maxiter,
        )
    matvec = as_matvec(A)
    rank = np.full(nrows, 1.0 / nrows)
    history = []
    for k in range(1, maxiter + 1):
        new = damping * matvec(rank)
        new += (1.0 - new.sum()) / nrows
        delta = float(np.abs(new - rank).sum())
        history.append(delta)
        rank = new
        if delta <= tol:
            return SolveResult(
                x=rank, converged=True, iterations=k,
                residual_norm=delta, residual_history=np.array(history),
            )
    return SolveResult(
        x=rank, converged=False, iterations=maxiter,
        residual_norm=history[-1], residual_history=np.array(history),
    )


def _personalized_pagerank(A, nrows, teleport, *, damping, tol,
                           maxiter) -> SolveResult:
    """Batched personalized PageRank: one power iteration drives all
    ``k`` teleport distributions through a single ``matmat``."""
    from .base import as_matmat

    single = teleport.ndim == 1
    V = teleport.reshape(nrows, -1).copy()
    if np.any(V < 0.0):
        raise ValueError("personalization must be non-negative")
    sums = V.sum(axis=0)
    if np.any(sums <= 0.0):
        raise ValueError("personalization columns must have positive mass")
    V /= sums
    matmat = as_matmat(A)
    R = V.copy()
    history = []
    for k in range(1, maxiter + 1):
        NEW = damping * matmat(R)
        # Redistribute the lost mass (dangling + teleport) per seed.
        NEW += V * (1.0 - NEW.sum(axis=0))
        delta = np.abs(NEW - R).sum(axis=0)
        history.append(float(delta.max(initial=0.0)))
        R = NEW
        if delta.max(initial=0.0) <= tol:
            return SolveResult(
                x=R[:, 0] if single else R, converged=True,
                iterations=k, residual_norm=history[-1],
                residual_history=np.array(history),
            )
    return SolveResult(
        x=R[:, 0] if single else R, converged=False, iterations=maxiter,
        residual_norm=history[-1], residual_history=np.array(history),
    )
