"""Preconditioners.

The paper's amortization argument (Section IV-D) hinges on
preconditioned solvers converging in few iterations — these simple
preconditioners let the examples demonstrate exactly that trade-off.
"""

from __future__ import annotations

import numpy as np

from ..formats import CSRMatrix

__all__ = ["jacobi_preconditioner", "ssor_preconditioner_diag"]


def jacobi_preconditioner(csr: CSRMatrix, default: float = 1.0):
    """Diagonal (Jacobi) preconditioner ``M^-1 r = r / diag(A)``.

    Rows without a stored diagonal entry (or a zero one) fall back to
    ``default`` so the preconditioner is always well defined.
    """
    if csr.nrows != csr.ncols:
        raise ValueError("Jacobi preconditioner needs a square matrix")
    diag = np.full(csr.nrows, default, dtype=np.float64)
    rows = csr.row_ids_per_nnz()
    on_diag = csr.colind.astype(np.int64) == rows
    diag_rows = rows[on_diag]
    diag[diag_rows] = csr.values[on_diag]
    diag[diag == 0.0] = default
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def ssor_preconditioner_diag(csr: CSRMatrix, omega: float = 1.0):
    """Diagonal approximation of the SSOR preconditioner.

    Uses the SSOR diagonal scaling ``omega * (2 - omega) / diag(A)``;
    cheap and matrix-shape agnostic, good enough to cut CG iteration
    counts on the SPD test problems the examples use.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    jac = jacobi_preconditioner(csr)
    scale = omega * (2.0 - omega)

    def apply(r: np.ndarray) -> np.ndarray:
        return scale * jac(r)

    return apply
