"""Restarted GMRES for general systems.

One SpMV per inner iteration, Arnoldi with modified Gram-Schmidt and
Givens-rotation least squares — the second solver family the paper's
amortization argument names (GMRES variants).
"""

from __future__ import annotations

import numpy as np

from ..memory import Workspace
from .base import (
    SolveResult,
    as_matvec,
    as_matvec_into,
    finite_residual,
    identity_preconditioner,
    make_report,
)

__all__ = ["gmres"]


def gmres(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` with GMRES(restart), left-preconditioned.

    A 2-D ``b`` of shape ``(n, k)`` solves the ``k`` systems column by
    column: each column builds its own Krylov space, so unlike CG /
    BiCGSTAB the Arnoldi process cannot share one batched apply across
    columns. The block form is provided for interface uniformity; the
    result stacks the per-column solutions (``iterations`` sums the
    per-column counts, ``residual_norm`` is the worst column).
    """
    b = np.asarray(b, dtype=np.float64)
    if restart < 1:
        raise ValueError("restart must be >= 1")
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        X0 = None if x0 is None else np.asarray(x0, dtype=np.float64)
        results = [
            gmres(
                A, b[:, j],
                None if X0 is None else X0[:, j],
                tol=tol, restart=restart, maxiter=maxiter,
                preconditioner=preconditioner,
            )
            for j in range(b.shape[1])
        ]
        return SolveResult(
            x=np.column_stack([r.x for r in results])
            if results else np.zeros_like(b),
            converged=all(r.converged for r in results),
            iterations=sum(r.iterations for r in results),
            residual_norm=max(
                (r.residual_norm for r in results), default=0.0
            ),
            residual_history=None,
            report=make_report(
                [r.report.reason for r in results],
                sum(r.report.restarts for r in results),
                all(r.converged for r in results),
            ),
        )
    matvec = as_matvec(A)
    matvec_into = as_matvec_into(A, Workspace())
    M = preconditioner or identity_preconditioner
    identity = M is identity_preconditioner
    n = b.size
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    bnorm = float(np.linalg.norm(M(b))) or 1.0
    if not np.isfinite(bnorm):
        bnorm = 1.0
    history: list[float] = []
    total_iters = 0
    # Breakdown bookkeeping: x_ref is the last finite iterate; one
    # recovery restart is attempted before reporting the breakdown.
    x_ref = x.copy()
    reason: str | None = None
    recoveries = 0
    # Krylov-cycle storage is preallocated once at the solve's restart
    # width; a (shorter) final cycle uses zero-filled views. The inner
    # Arnoldi loop writes only into these buffers.
    mcap = min(restart, maxiter)
    Qbuf = np.empty((mcap + 1, n))
    Hbuf = np.empty((mcap + 1, mcap))
    csbuf = np.empty(mcap)
    snbuf = np.empty(mcap)
    gbuf = np.empty(mcap + 1)
    w0 = np.empty(n)
    r0 = np.empty(n)
    tmp = np.empty(n)

    while total_iters < maxiter:
        matvec_into(x, tmp)
        np.subtract(b, tmp, out=r0)
        r = r0 if identity else M(r0)
        beta = float(np.linalg.norm(r))
        if not np.isfinite(beta):
            if not np.isfinite(x).all():
                x = x_ref.copy()
            if recoveries >= 1:
                reason = "non-finite-residual"
                break
            recoveries += 1
            continue  # retry once from the last finite iterate
        x_ref = x.copy()
        if not history:
            history.append(beta)
        if beta <= tol * bnorm:
            return SolveResult(
                x=x, converged=True, iterations=total_iters,
                residual_norm=beta, residual_history=np.array(history),
                report=make_report([], recoveries, True),
            )
        m = min(restart, maxiter - total_iters)
        Q = Qbuf[: m + 1]
        H = Hbuf[: m + 1, :m]
        cs = csbuf[:m]
        sn = snbuf[:m]
        g = gbuf[: m + 1]
        Q.fill(0.0)
        H.fill(0.0)
        cs.fill(0.0)
        sn.fill(0.0)
        g.fill(0.0)
        g[0] = beta
        np.divide(r, beta, out=Q[0])

        k_done = 0
        arnoldi_broke = False
        for k in range(m):
            matvec_into(Q[k], w0)
            w = w0 if identity else M(w0)
            # Modified Gram-Schmidt (fused: w -= H[i,k] * Q[i])
            for i in range(k + 1):
                H[i, k] = float(w @ Q[i])
                np.multiply(Q[i], H[i, k], out=tmp)
                np.subtract(w, tmp, out=w)
            H[k + 1, k] = float(np.linalg.norm(w))
            if not np.isfinite(H[k + 1, k]):
                # Non-finite Arnoldi vector: discard this column and
                # fall through to the (finite) partial update below.
                arnoldi_broke = True
                break
            if H[k + 1, k] > 1e-14:
                np.divide(w, H[k + 1, k], out=Q[k + 1])
            # Apply existing Givens rotations to the new column.
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            # New rotation to annihilate H[k+1, k].
            denom = float(np.hypot(H[k, k], H[k + 1, k])) or 1e-300
            cs[k] = H[k, k] / denom
            sn[k] = H[k + 1, k] / denom
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            total_iters += 1
            rnorm = abs(float(g[k + 1]))
            history.append(rnorm)
            if rnorm <= tol * bnorm:
                break

        # Solve the small triangular system and update x.
        y = np.linalg.solve(
            H[:k_done, :k_done], g[:k_done]
        ) if k_done else np.zeros(0)
        x = x + Q[:k_done].T @ y
        if np.isfinite(x).all():
            x_ref = x.copy()
        if arnoldi_broke:
            if recoveries >= 1:
                reason = "non-finite-residual"
                break
            recoveries += 1
            x = x_ref.copy()
            continue  # retry once from the last finite iterate
        if history[-1] <= tol * bnorm:
            final = float(np.linalg.norm(M(b - matvec(x))))
            return SolveResult(
                x=x, converged=final <= tol * bnorm * 10.0,
                iterations=total_iters, residual_norm=final,
                residual_history=np.array(history),
                report=make_report([], recoveries,
                                   final <= tol * bnorm * 10.0),
            )

    if not np.isfinite(x).all():
        x = x_ref
    final = float(np.linalg.norm(M(b - matvec(x))))
    if not np.isfinite(final):
        reason = reason or "non-finite-residual"
        final = finite_residual(history)
    converged = final <= tol * bnorm and reason is None
    return SolveResult(
        x=x, converged=converged, iterations=total_iters,
        residual_norm=final, residual_history=np.array(history),
        report=make_report([reason] if reason else [], recoveries,
                           converged),
    )
