"""Iterative solvers (system S9): the context that motivates
lightweight SpMV autotuning."""

from .base import (
    SolveResult,
    SolverReport,
    as_matmat,
    as_matvec,
    columnwise,
    identity_preconditioner,
)
from .bicgstab import bicgstab
from .cg import cg
from .cgnr import cgnr
from .eigen import pagerank, power_iteration
from .gmres import gmres
from .precond import jacobi_preconditioner, ssor_preconditioner_diag

__all__ = [
    "SolveResult",
    "SolverReport",
    "as_matvec",
    "as_matmat",
    "columnwise",
    "identity_preconditioner",
    "cg",
    "cgnr",
    "bicgstab",
    "gmres",
    "power_iteration",
    "pagerank",
    "jacobi_preconditioner",
    "ssor_preconditioner_diag",
]
