"""BiCGSTAB for general (non-symmetric) systems.

Two SpMVs per iteration; used by the examples for the non-SPD
matrices in the suite (circuit and graph matrices).

The hot loop is fused like :mod:`repro.solvers.cg`: all iteration
vectors are preallocated, the SpMVs write through the operator's
``out=`` plane, and the recurrences run in place with the exact
elementwise operation sequence of the allocating formulation, so
results are bit-identical while the steady state allocates nothing.
"""

from __future__ import annotations

import numpy as np

from ..memory import Workspace
from .base import (
    SolveResult,
    as_matmat_into,
    as_matvec_into,
    columnwise,
    finite_residual,
    identity_preconditioner,
    make_report,
)

__all__ = ["bicgstab"]


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` with van der Vorst's stabilized BiCG.

    A 2-D ``b`` of shape ``(n, k)`` solves all ``k`` systems at once
    with two batched ``matmat`` applications per iteration.

    Breakdowns (``rho``/``omega`` collapse, zero ``r_hat @ v``, a
    non-finite residual) trigger one restart from the last finite
    iterate; if the restart breaks down too, the result carries
    ``report.breakdown=True`` with the reason — and ``x`` stays the
    last finite iterate, never NaN garbage.
    """
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        return _block_bicgstab(A, b, x0, tol=tol, maxiter=maxiter,
                               preconditioner=preconditioner)
    matvec_into = as_matvec_into(A, Workspace())
    M = preconditioner or identity_preconditioner
    identity = M is identity_preconditioner
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    x_init = x.copy()  # pristine fallback for breakdown recovery
    bnorm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []
    # Preallocated iteration vectors; the sweep below only writes into
    # these (plus whatever a non-identity preconditioner returns).
    r = np.empty_like(b)
    r_hat = np.empty_like(b)
    v = np.empty_like(b)
    p = np.empty_like(b)
    s = np.empty_like(b)
    t = np.empty_like(b)
    tmp = np.empty_like(b)

    def restore(x):
        if np.isfinite(x_init).all():
            np.copyto(x, x_init)
        else:
            x.fill(0.0)
        return x

    def sweep(x, budget):
        """One BiCGSTAB sweep, updating ``x`` in place; returns
        (x, converged, iters, reason)."""
        if x.any():
            matvec_into(x, tmp)
            np.subtract(b, tmp, out=r)
        else:
            np.copyto(r, b)
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if not np.isfinite(rnorm):
            return x, False, 0, "non-finite-residual"
        if rnorm <= tol * bnorm:
            return x, True, 0, None
        np.copyto(r_hat, r)
        rho = alpha = omega = 1.0
        v.fill(0.0)
        p.fill(0.0)
        for k in range(1, budget + 1):
            rho_new = float(r_hat @ r)
            if not np.isfinite(rho_new):
                return x, False, k - 1, "non-finite-residual"
            if rho_new == 0.0:
                return x, False, k - 1, "rho-breakdown"
            if omega == 0.0:
                return x, False, k - 1, "omega-breakdown"
            beta = (rho_new / rho) * (alpha / omega)
            rho = rho_new
            np.multiply(v, omega, out=tmp)      # p = r + beta*(p - omega*v)
            np.subtract(p, tmp, out=p)
            np.multiply(p, beta, out=p)
            np.add(r, p, out=p)
            phat = p if identity else M(p)
            matvec_into(phat, v)
            denom = float(r_hat @ v)
            if not np.isfinite(denom):
                return x, False, k - 1, "non-finite-residual"
            if denom == 0.0:
                return x, False, k - 1, "rhat-v-breakdown"
            alpha = rho / denom
            np.multiply(v, alpha, out=tmp)      # s = r - alpha * v
            np.subtract(r, tmp, out=s)
            snorm = float(np.linalg.norm(s))
            if not np.isfinite(snorm):
                return x, False, k - 1, "non-finite-residual"
            if snorm <= tol * bnorm:
                np.multiply(phat, alpha, out=tmp)   # x += alpha * phat
                np.add(x, tmp, out=x)
                history.append(snorm)
                return x, True, k, None
            shat = s if identity else M(s)
            matvec_into(shat, t)
            tt = float(t @ t)
            if not np.isfinite(tt):
                return x, False, k - 1, "non-finite-residual"
            if tt == 0.0:
                return x, False, k - 1, "omega-breakdown"
            omega = float(t @ s) / tt
            np.multiply(phat, alpha, out=tmp)   # x += alpha*phat + omega*shat
            np.add(x, tmp, out=x)
            np.multiply(shat, omega, out=tmp)
            np.add(x, tmp, out=x)
            np.multiply(t, omega, out=tmp)      # r = s - omega * t
            np.subtract(s, tmp, out=r)
            rnorm = float(np.linalg.norm(r))
            history.append(rnorm)
            if not np.isfinite(rnorm):
                return x, False, k, "non-finite-residual"
            if rnorm <= tol * bnorm:
                return x, True, k, None
        return x, False, budget, None

    x1, converged, used, reason = sweep(x, maxiter)
    reasons = [reason]
    restarts = 0
    if reason is not None and used < maxiter:
        # One recovery attempt from the last finite iterate.
        restarts = 1
        if not np.isfinite(x1).all():
            x1 = restore(x1)
        x1, converged, used2, reason2 = sweep(x1, maxiter - used)
        used += used2
        reasons.append(reason2)
    if not np.isfinite(x1).all():
        x1 = restore(x1)

    return SolveResult(
        x=x1, converged=converged, iterations=used,
        residual_norm=finite_residual(history),
        residual_history=np.array(history),
        report=make_report(reasons, restarts, converged),
    )


def _block_bicgstab(A, B, X0, *, tol, maxiter, preconditioner) -> SolveResult:
    """Multi-RHS BiCGSTAB with per-column scalar recurrences.

    Mirrors the single-RHS iteration column by column; converged and
    broken-down columns are frozen (zero step, zeroed direction) while
    the active ones share the two batched ``matmat`` calls per step.
    The mid-step early exit (``||s||`` small) freezes the column after
    the half-update, exactly like the scalar code path. Columns whose
    recurrences go non-finite are frozen at their last finite iterate
    and the aggregate breakdown is reported in ``report``.

    All ``(n, k)`` iteration blocks are preallocated and updated in
    place; per-step allocations are limited to O(k) control vectors.
    """
    matmat_into = as_matmat_into(A, Workspace())
    M = columnwise(preconditioner or identity_preconditioner)
    identity = M is identity_preconditioner
    n, k = B.shape
    X = (
        np.zeros_like(B)
        if X0 is None
        else np.array(X0, dtype=np.float64, copy=True).reshape(n, k)
    )
    R = np.empty_like(B)
    R_hat = np.empty_like(B)
    S = np.empty_like(B)
    T = np.empty_like(B)
    tmp = np.empty_like(B)
    tmp2 = np.empty_like(B)
    if X.any():
        matmat_into(X, tmp)
        np.subtract(B, tmp, out=R)
    else:
        np.copyto(R, B)
    np.copyto(R_hat, R)
    rho = np.ones(k)
    alpha = np.ones(k)
    omega = np.ones(k)
    V = np.zeros_like(B)
    P = np.zeros_like(B)
    bnorm = np.linalg.norm(B, axis=0)
    bnorm[bnorm == 0.0] = 1.0
    rnorm = np.linalg.norm(R, axis=0)
    history = [rnorm.copy()]
    converged = rnorm <= tol * bnorm
    active = ~converged
    iterations = 0
    reasons: list[str] = []

    def drop(mask, reason):
        """Freeze ``mask`` columns, recording why."""
        nonlocal active
        if mask.any():
            reasons.append(reason)
            active = active & ~mask

    for it in range(1, maxiter + 1):
        if not active.any():
            break
        rho_new = np.einsum("ij,ij->j", R_hat, R)
        drop(active & ~np.isfinite(rho_new), "non-finite-residual")
        drop(active & (rho_new == 0.0), "rho-breakdown")
        drop(active & (omega == 0.0), "omega-breakdown")
        if not active.any():
            break
        beta = np.where(
            active,
            (rho_new / np.where(rho != 0.0, rho, 1.0))
            * (alpha / np.where(omega != 0.0, omega, 1.0)),
            0.0,
        )
        rho = np.where(active, rho_new, rho)
        np.multiply(V, omega, out=tmp)   # P = R + beta * (P - omega * V)
        np.subtract(P, tmp, out=P)
        np.multiply(P, beta, out=P)
        np.add(R, P, out=P)
        P[:, ~active] = 0.0
        Phat = P if identity else M(P)
        matmat_into(Phat, V)
        denom = np.einsum("ij,ij->j", R_hat, V)
        drop(active & ~np.isfinite(denom), "non-finite-residual")
        drop(active & np.isfinite(denom) & (denom == 0.0),
             "rhat-v-breakdown")
        # Zero frozen columns so 0 * NaN cannot leak into X/R below.
        V[:, ~active] = 0.0
        alpha = np.where(
            active, rho / np.where(denom != 0.0, denom, 1.0), 0.0
        )
        np.multiply(V, alpha, out=tmp)          # S = R - alpha * V
        np.subtract(R, tmp, out=S)
        snorm = np.linalg.norm(S, axis=0)
        drop(active & ~np.isfinite(snorm), "non-finite-residual")
        # Mid-step convergence: take the half update and freeze.
        half = active & (snorm <= tol * bnorm)
        np.multiply(Phat, np.where(half, alpha, 0.0), out=tmp)
        np.add(X, tmp, out=X)
        converged = converged | half
        active = active & ~half
        S[:, ~active] = 0.0
        Shat = S if identity else M(S)
        matmat_into(Shat, T)
        tt = np.einsum("ij,ij->j", T, T)
        drop(active & ~np.isfinite(tt), "non-finite-residual")
        drop(active & np.isfinite(tt) & (tt == 0.0), "omega-breakdown")
        T[:, ~active] = 0.0
        omega = np.where(
            active,
            np.einsum("ij,ij->j", T, S) / np.where(tt != 0.0, tt, 1.0),
            0.0,
        )
        step = np.where(active, alpha, 0.0)
        np.multiply(Phat, step, out=tmp)  # X += step*Phat + omega*Shat
        np.multiply(Shat, omega, out=tmp2)
        np.add(tmp, tmp2, out=tmp)
        np.add(X, tmp, out=X)
        np.multiply(T, omega, out=tmp)    # R = where(active, S - omega*T, R)
        np.subtract(S, tmp, out=tmp)
        np.copyto(R, tmp, where=active)
        rnorm = np.where(active, np.linalg.norm(R, axis=0), history[-1])
        rnorm = np.where(half, snorm, rnorm)
        drop(active & ~np.isfinite(rnorm), "non-finite-residual")
        history.append(rnorm.copy())
        iterations = it
        newly = active & (rnorm <= tol * bnorm)
        converged = converged | newly
        active = active & ~newly

    final = history[-1]
    final = final[np.isfinite(final)]
    all_converged = bool(converged.all())
    return SolveResult(
        x=X, converged=all_converged, iterations=iterations,
        residual_norm=float(final.max(initial=0.0)),
        residual_history=np.array(history),
        report=make_report(reasons, 0, all_converged),
    )
