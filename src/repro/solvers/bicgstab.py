"""BiCGSTAB for general (non-symmetric) systems.

Two SpMVs per iteration; used by the examples for the non-SPD
matrices in the suite (circuit and graph matrices).
"""

from __future__ import annotations

import numpy as np

from .base import SolveResult, as_matvec, identity_preconditioner

__all__ = ["bicgstab"]


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` with van der Vorst's stabilized BiCG."""
    matvec = as_matvec(A)
    M = preconditioner or identity_preconditioner
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    r = b - matvec(x) if x.any() else b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r))]

    for k in range(1, maxiter + 1):
        rho_new = float(r_hat @ r)
        if rho_new == 0.0 or omega == 0.0:
            break  # breakdown
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        phat = M(p)
        v = matvec(phat)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho / denom
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if snorm <= tol * bnorm:
            x += alpha * phat
            history.append(snorm)
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=snorm,
                residual_history=np.array(history),
            )
        shat = M(s)
        t = matvec(shat)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * phat + omega * shat
        r = s - omega * t
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=rnorm,
                residual_history=np.array(history),
            )

    return SolveResult(
        x=x, converged=False, iterations=len(history) - 1,
        residual_norm=history[-1], residual_history=np.array(history),
    )
