"""BiCGSTAB for general (non-symmetric) systems.

Two SpMVs per iteration; used by the examples for the non-SPD
matrices in the suite (circuit and graph matrices).
"""

from __future__ import annotations

import numpy as np

from .base import (
    SolveResult,
    as_matmat,
    as_matvec,
    columnwise,
    identity_preconditioner,
)

__all__ = ["bicgstab"]


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` with van der Vorst's stabilized BiCG.

    A 2-D ``b`` of shape ``(n, k)`` solves all ``k`` systems at once
    with two batched ``matmat`` applications per iteration.
    """
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        return _block_bicgstab(A, b, x0, tol=tol, maxiter=maxiter,
                               preconditioner=preconditioner)
    matvec = as_matvec(A)
    M = preconditioner or identity_preconditioner
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    r = b - matvec(x) if x.any() else b.copy()
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r))]

    for k in range(1, maxiter + 1):
        rho_new = float(r_hat @ r)
        if rho_new == 0.0 or omega == 0.0:
            break  # breakdown
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        phat = M(p)
        v = matvec(phat)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho / denom
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if snorm <= tol * bnorm:
            x += alpha * phat
            history.append(snorm)
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=snorm,
                residual_history=np.array(history),
            )
        shat = M(s)
        t = matvec(shat)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * phat + omega * shat
        r = s - omega * t
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=rnorm,
                residual_history=np.array(history),
            )

    return SolveResult(
        x=x, converged=False, iterations=len(history) - 1,
        residual_norm=history[-1], residual_history=np.array(history),
    )


def _block_bicgstab(A, B, X0, *, tol, maxiter, preconditioner) -> SolveResult:
    """Multi-RHS BiCGSTAB with per-column scalar recurrences.

    Mirrors the single-RHS iteration column by column; converged and
    broken-down columns are frozen (zero step, zeroed direction) while
    the active ones share the two batched ``matmat`` calls per step.
    The mid-step early exit (``||s||`` small) freezes the column after
    the half-update, exactly like the scalar code path.
    """
    matmat = as_matmat(A)
    M = columnwise(preconditioner or identity_preconditioner)
    n, k = B.shape
    X = (
        np.zeros_like(B)
        if X0 is None
        else np.array(X0, dtype=np.float64, copy=True).reshape(n, k)
    )
    R = B - matmat(X) if X.any() else B.copy()
    R_hat = R.copy()
    rho = np.ones(k)
    alpha = np.ones(k)
    omega = np.ones(k)
    V = np.zeros_like(B)
    P = np.zeros_like(B)
    bnorm = np.linalg.norm(B, axis=0)
    bnorm[bnorm == 0.0] = 1.0
    rnorm = np.linalg.norm(R, axis=0)
    history = [rnorm.copy()]
    converged = rnorm <= tol * bnorm
    active = ~converged
    iterations = 0

    for it in range(1, maxiter + 1):
        if not active.any():
            break
        rho_new = np.einsum("ij,ij->j", R_hat, R)
        active = active & (rho_new != 0.0) & (omega != 0.0)
        if not active.any():
            break
        beta = np.where(
            active,
            (rho_new / np.where(rho != 0.0, rho, 1.0))
            * (alpha / np.where(omega != 0.0, omega, 1.0)),
            0.0,
        )
        rho = np.where(active, rho_new, rho)
        P = R + beta * (P - omega * V)
        P[:, ~active] = 0.0
        Phat = M(P)
        V = matmat(Phat)
        denom = np.einsum("ij,ij->j", R_hat, V)
        active = active & (denom != 0.0)
        alpha = np.where(
            active, rho / np.where(denom != 0.0, denom, 1.0), 0.0
        )
        S = R - alpha * V
        snorm = np.linalg.norm(S, axis=0)
        # Mid-step convergence: take the half update and freeze.
        half = active & (snorm <= tol * bnorm)
        X += np.where(half, alpha, 0.0) * Phat
        converged = converged | half
        active = active & ~half
        Shat = M(S)
        T = matmat(Shat)
        tt = np.einsum("ij,ij->j", T, T)
        active = active & (tt != 0.0)
        omega = np.where(
            active,
            np.einsum("ij,ij->j", T, S) / np.where(tt != 0.0, tt, 1.0),
            0.0,
        )
        step = np.where(active, alpha, 0.0)
        X += step * Phat + omega * Shat
        R = np.where(active, S - omega * T, R)
        rnorm = np.where(active, np.linalg.norm(R, axis=0), history[-1])
        rnorm = np.where(half, snorm, rnorm)
        history.append(rnorm.copy())
        iterations = it
        newly = active & (rnorm <= tol * bnorm)
        converged = converged | newly
        active = active & ~newly

    final = history[-1]
    return SolveResult(
        x=X, converged=bool(converged.all()), iterations=iterations,
        residual_norm=float(final.max(initial=0.0)),
        residual_history=np.array(history),
    )
