"""BiCGSTAB for general (non-symmetric) systems.

Two SpMVs per iteration; used by the examples for the non-SPD
matrices in the suite (circuit and graph matrices).
"""

from __future__ import annotations

import numpy as np

from .base import (
    SolveResult,
    as_matmat,
    as_matvec,
    columnwise,
    finite_residual,
    identity_preconditioner,
    make_report,
)

__all__ = ["bicgstab"]


def bicgstab(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` with van der Vorst's stabilized BiCG.

    A 2-D ``b`` of shape ``(n, k)`` solves all ``k`` systems at once
    with two batched ``matmat`` applications per iteration.

    Breakdowns (``rho``/``omega`` collapse, zero ``r_hat @ v``, a
    non-finite residual) trigger one restart from the last finite
    iterate; if the restart breaks down too, the result carries
    ``report.breakdown=True`` with the reason — and ``x`` stays the
    last finite iterate, never NaN garbage.
    """
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        return _block_bicgstab(A, b, x0, tol=tol, maxiter=maxiter,
                               preconditioner=preconditioner)
    matvec = as_matvec(A)
    M = preconditioner or identity_preconditioner
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    bnorm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []

    def sweep(x, budget):
        """One BiCGSTAB sweep; returns (x, converged, iters, reason)."""
        r = b - matvec(x) if x.any() else b.copy()
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if not np.isfinite(rnorm):
            return x, False, 0, "non-finite-residual"
        if rnorm <= tol * bnorm:
            return x, True, 0, None
        r_hat = r.copy()
        rho = alpha = omega = 1.0
        v = np.zeros_like(b)
        p = np.zeros_like(b)
        for k in range(1, budget + 1):
            rho_new = float(r_hat @ r)
            if not np.isfinite(rho_new):
                return x, False, k - 1, "non-finite-residual"
            if rho_new == 0.0:
                return x, False, k - 1, "rho-breakdown"
            if omega == 0.0:
                return x, False, k - 1, "omega-breakdown"
            beta = (rho_new / rho) * (alpha / omega)
            rho = rho_new
            p = r + beta * (p - omega * v)
            phat = M(p)
            v = matvec(phat)
            denom = float(r_hat @ v)
            if not np.isfinite(denom):
                return x, False, k - 1, "non-finite-residual"
            if denom == 0.0:
                return x, False, k - 1, "rhat-v-breakdown"
            alpha = rho / denom
            s = r - alpha * v
            snorm = float(np.linalg.norm(s))
            if not np.isfinite(snorm):
                return x, False, k - 1, "non-finite-residual"
            if snorm <= tol * bnorm:
                x = x + alpha * phat
                history.append(snorm)
                return x, True, k, None
            shat = M(s)
            t = matvec(shat)
            tt = float(t @ t)
            if not np.isfinite(tt):
                return x, False, k - 1, "non-finite-residual"
            if tt == 0.0:
                return x, False, k - 1, "omega-breakdown"
            omega = float(t @ s) / tt
            x = x + alpha * phat + omega * shat
            r = s - omega * t
            rnorm = float(np.linalg.norm(r))
            history.append(rnorm)
            if not np.isfinite(rnorm):
                return x, False, k, "non-finite-residual"
            if rnorm <= tol * bnorm:
                return x, True, k, None
        return x, False, budget, None

    x1, converged, used, reason = sweep(x, maxiter)
    reasons = [reason]
    restarts = 0
    if reason is not None and used < maxiter:
        # One recovery attempt from the last finite iterate.
        restarts = 1
        if not np.isfinite(x1).all():
            x1 = x if np.isfinite(x).all() else np.zeros_like(b)
        x1, converged, used2, reason2 = sweep(x1, maxiter - used)
        used += used2
        reasons.append(reason2)
    if not np.isfinite(x1).all():
        x1 = x if np.isfinite(x).all() else np.zeros_like(b)

    return SolveResult(
        x=x1, converged=converged, iterations=used,
        residual_norm=finite_residual(history),
        residual_history=np.array(history),
        report=make_report(reasons, restarts, converged),
    )


def _block_bicgstab(A, B, X0, *, tol, maxiter, preconditioner) -> SolveResult:
    """Multi-RHS BiCGSTAB with per-column scalar recurrences.

    Mirrors the single-RHS iteration column by column; converged and
    broken-down columns are frozen (zero step, zeroed direction) while
    the active ones share the two batched ``matmat`` calls per step.
    The mid-step early exit (``||s||`` small) freezes the column after
    the half-update, exactly like the scalar code path. Columns whose
    recurrences go non-finite are frozen at their last finite iterate
    and the aggregate breakdown is reported in ``report``.
    """
    matmat = as_matmat(A)
    M = columnwise(preconditioner or identity_preconditioner)
    n, k = B.shape
    X = (
        np.zeros_like(B)
        if X0 is None
        else np.array(X0, dtype=np.float64, copy=True).reshape(n, k)
    )
    R = B - matmat(X) if X.any() else B.copy()
    R_hat = R.copy()
    rho = np.ones(k)
    alpha = np.ones(k)
    omega = np.ones(k)
    V = np.zeros_like(B)
    P = np.zeros_like(B)
    bnorm = np.linalg.norm(B, axis=0)
    bnorm[bnorm == 0.0] = 1.0
    rnorm = np.linalg.norm(R, axis=0)
    history = [rnorm.copy()]
    converged = rnorm <= tol * bnorm
    active = ~converged
    iterations = 0
    reasons: list[str] = []

    def drop(mask, reason):
        """Freeze ``mask`` columns, recording why."""
        nonlocal active
        if mask.any():
            reasons.append(reason)
            active = active & ~mask

    for it in range(1, maxiter + 1):
        if not active.any():
            break
        rho_new = np.einsum("ij,ij->j", R_hat, R)
        drop(active & ~np.isfinite(rho_new), "non-finite-residual")
        drop(active & (rho_new == 0.0), "rho-breakdown")
        drop(active & (omega == 0.0), "omega-breakdown")
        if not active.any():
            break
        beta = np.where(
            active,
            (rho_new / np.where(rho != 0.0, rho, 1.0))
            * (alpha / np.where(omega != 0.0, omega, 1.0)),
            0.0,
        )
        rho = np.where(active, rho_new, rho)
        P = R + beta * (P - omega * V)
        P[:, ~active] = 0.0
        Phat = M(P)
        V = matmat(Phat)
        denom = np.einsum("ij,ij->j", R_hat, V)
        drop(active & ~np.isfinite(denom), "non-finite-residual")
        drop(active & np.isfinite(denom) & (denom == 0.0),
             "rhat-v-breakdown")
        # Zero frozen columns so 0 * NaN cannot leak into X/R below.
        V[:, ~active] = 0.0
        alpha = np.where(
            active, rho / np.where(denom != 0.0, denom, 1.0), 0.0
        )
        S = R - alpha * V
        snorm = np.linalg.norm(S, axis=0)
        drop(active & ~np.isfinite(snorm), "non-finite-residual")
        # Mid-step convergence: take the half update and freeze.
        half = active & (snorm <= tol * bnorm)
        X += np.where(half, alpha, 0.0) * Phat
        converged = converged | half
        active = active & ~half
        S[:, ~active] = 0.0
        Shat = M(S)
        T = matmat(Shat)
        tt = np.einsum("ij,ij->j", T, T)
        drop(active & ~np.isfinite(tt), "non-finite-residual")
        drop(active & np.isfinite(tt) & (tt == 0.0), "omega-breakdown")
        T[:, ~active] = 0.0
        omega = np.where(
            active,
            np.einsum("ij,ij->j", T, S) / np.where(tt != 0.0, tt, 1.0),
            0.0,
        )
        step = np.where(active, alpha, 0.0)
        X += step * Phat + omega * Shat
        R = np.where(active, S - omega * T, R)
        rnorm = np.where(active, np.linalg.norm(R, axis=0), history[-1])
        rnorm = np.where(half, snorm, rnorm)
        drop(active & ~np.isfinite(rnorm), "non-finite-residual")
        history.append(rnorm.copy())
        iterations = it
        newly = active & (rnorm <= tol * bnorm)
        converged = converged | newly
        active = active & ~newly

    final = history[-1]
    final = final[np.isfinite(final)]
    all_converged = bool(converged.all())
    return SolveResult(
        x=X, converged=all_converged, iterations=iterations,
        residual_norm=float(final.max(initial=0.0)),
        residual_history=np.array(history),
        report=make_report(reasons, 0, all_converged),
    )
