"""Common infrastructure for the iterative solvers (system S9).

The solvers accept anything with a ``matvec(x) -> y`` method (all
:mod:`repro.formats` matrices, :class:`repro.core.OptimizedSpMV`) or a
bare callable, so the same CG/GMRES code runs on the baseline and on
optimizer-produced operators — which is how the examples demonstrate
end-to-end solver acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["SolveResult", "as_matvec", "identity_preconditioner"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: np.ndarray = field(repr=False, default=None)

    @property
    def spmv_count(self) -> int:
        """SpMV invocations performed (== iterations for CG/GMRES,
        2x for BiCGSTAB)."""
        return self.iterations


def as_matvec(operator) -> Callable[[np.ndarray], np.ndarray]:
    """Normalize an operator to a ``matvec`` callable."""
    if callable(operator) and not hasattr(operator, "matvec"):
        return operator
    if hasattr(operator, "matvec"):
        return operator.matvec
    raise TypeError(
        f"operator must be callable or have .matvec, got {type(operator)!r}"
    )


def identity_preconditioner(r: np.ndarray) -> np.ndarray:
    """The no-op preconditioner."""
    return r
