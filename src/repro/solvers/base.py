"""Common infrastructure for the iterative solvers (system S9).

The solvers accept anything with a ``matvec(x) -> y`` method (all
:mod:`repro.formats` matrices, :class:`repro.core.OptimizedSpMV`) or a
bare callable, so the same CG/GMRES code runs on the baseline and on
optimizer-produced operators — which is how the examples demonstrate
end-to-end solver acceleration.

Solvers also take a 2-D block of right-hand sides: ``b`` of shape
``(n, k)`` solves all ``k`` systems at once through the operator's
batched ``matmat`` plane (see :func:`as_matmat`), amortizing matrix
traffic over the whole block.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "SolveResult",
    "SolverReport",
    "as_matvec",
    "as_matmat",
    "as_matvec_into",
    "as_matmat_into",
    "into_adapter",
    "columnwise",
    "identity_preconditioner",
]


@dataclass(frozen=True)
class SolverReport:
    """Structured breakdown diagnostics attached to a solve.

    ``breakdown`` is true when the final sweep ended in a numerical
    breakdown (non-finite residual, indefinite operator, rho/omega
    collapse, ...) rather than plain non-convergence; ``reason`` names
    the last breakdown observed and ``restarts`` counts the recovery
    restarts that were attempted. A breakdown result still carries the
    last *finite* iterate in ``SolveResult.x`` — never NaN garbage.
    """

    breakdown: bool = False
    reason: str | None = None
    restarts: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.breakdown and self.reason is None:
            return "ok"
        state = "breakdown" if self.breakdown else "recovered"
        return f"{state}({self.reason}, restarts={self.restarts})"


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: np.ndarray = field(repr=False, default=None)
    report: SolverReport = field(default_factory=SolverReport)

    @property
    def breakdown(self) -> bool:
        """Did the solve end in a numerical breakdown? (see
        :class:`SolverReport`)"""
        return self.report.breakdown

    @property
    def spmv_count(self) -> int:
        """SpMV invocations performed (== iterations for CG/GMRES,
        2x for BiCGSTAB)."""
        return self.iterations


def finite_residual(history) -> float:
    """The most recent finite residual norm in ``history`` (``inf`` if
    none) — breakdown results must not report NaN norms."""
    for h in reversed(history):
        if np.isfinite(h):
            return float(h)
    return float("inf")


def make_report(reasons, restarts: int = 0,
                converged: bool = False) -> SolverReport:
    """Build a :class:`SolverReport` from the breakdown reasons seen.

    ``reasons`` is an ordered sequence (later entries are more recent);
    a solve that ultimately converged reports ``breakdown=False`` even
    if a restart recovered from an earlier breakdown (the reason is
    kept as a diagnostic).
    """
    reasons = [r for r in reasons if r]
    reason = reasons[-1] if reasons else None
    return SolverReport(
        breakdown=bool(reasons) and not converged,
        reason=reason,
        restarts=restarts,
    )


def as_matvec(operator) -> Callable[[np.ndarray], np.ndarray]:
    """Normalize an operator to a ``matvec`` callable."""
    if callable(operator) and not hasattr(operator, "matvec"):
        return operator
    if hasattr(operator, "matvec"):
        return operator.matvec
    raise TypeError(
        f"operator must be callable or have .matvec, got {type(operator)!r}"
    )


def as_matmat(operator) -> Callable[[np.ndarray], np.ndarray]:
    """Normalize an operator to a batched ``matmat(X) -> Y`` callable.

    Operators exposing ``matmat`` (all formats, ``OptimizedSpMV``) use
    their native batched plane; bare callables and matvec-only objects
    fall back to stacking one ``matvec`` per column.
    """
    if hasattr(operator, "matmat"):
        return operator.matmat
    matvec = as_matvec(operator)

    def stacked(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return np.column_stack([matvec(X[:, j]) for j in range(X.shape[1])])

    return stacked


def _io_support(method) -> tuple[bool, bool]:
    """Does ``method`` take the ``out=`` / ``workspace=`` keywords?"""
    try:
        params = inspect.signature(method).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False, False
    if any(p.kind is p.VAR_KEYWORD for p in params.values()):
        return True, True
    return "out" in params, "workspace" in params


def into_adapter(fn, workspace=None) -> Callable:
    """Wrap ``fn(x) -> y`` as ``fn(x, out) -> out``.

    When ``fn`` supports the ``out=`` keyword (all format matvecs, the
    optimized operator) the result is written straight into the
    caller's buffer — bit-identical to the allocating path — and a
    ``workspace`` arena is threaded through when supported, so repeat
    calls allocate nothing. Bare callables fall back to
    compute-then-copy.
    """
    has_out, has_ws = _io_support(fn)
    if has_out and has_ws and workspace is not None:
        def into(x, out):
            return fn(x, out=out, workspace=workspace)
    elif has_out:
        def into(x, out):
            return fn(x, out=out)
    else:
        def into(x, out):
            np.copyto(out, fn(x))
            return out
    return into


def as_matvec_into(operator, workspace=None) -> Callable:
    """Normalize an operator to in-place ``matvec(x, out) -> out``."""
    return into_adapter(as_matvec(operator), workspace)


def as_matmat_into(operator, workspace=None) -> Callable:
    """Normalize an operator to in-place ``matmat(X, out) -> out``."""
    return into_adapter(as_matmat(operator), workspace)


def columnwise(M) -> Callable[[np.ndarray], np.ndarray]:
    """Lift a single-vector preconditioner to a column-block one.

    Preconditioners are written for 1-D residuals; block solvers apply
    them per column through this wrapper (the identity passes through
    untouched).
    """
    if M is identity_preconditioner:
        return identity_preconditioner

    def apply(R: np.ndarray) -> np.ndarray:
        return np.column_stack([M(R[:, j]) for j in range(R.shape[1])])

    return apply


def identity_preconditioner(r: np.ndarray) -> np.ndarray:
    """The no-op preconditioner."""
    return r
