"""CGNR — conjugate gradient on the normal equations.

Solves the least-squares problem ``min ||A x - b||_2`` by running CG on
``A^T A x = A^T b`` without ever forming ``A^T A``: each iteration is
one ``matvec`` and one ``rmatvec``, i.e. two SpMV-shaped passes — the
rectangular-system counterpart of the paper's iterative-solver context
(LP matrices like *degme* are rectangular in the wild).
"""

from __future__ import annotations

import numpy as np

from ..memory import Workspace
from .base import SolveResult, finite_residual, into_adapter, make_report

__all__ = ["cgnr"]


def cgnr(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
) -> SolveResult:
    """Solve ``min ||A x - b||`` for an operator with matvec/rmatvec.

    Convergence criterion: ``||A^T r||_2 <= tol * ||A^T b||_2`` (the
    normal-equation residual, the quantity CGNR actually drives down).

    Breakdowns (zero search direction, non-finite residual) trigger one
    restart from the last finite iterate; if that breaks down too, the
    result carries ``report.breakdown=True`` with the reason — and
    ``x`` stays the last finite iterate, never NaN garbage.
    """
    if not (hasattr(A, "matvec") and hasattr(A, "rmatvec")):
        raise TypeError("A must provide matvec and rmatvec")
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    nrows, ncols = A.shape
    if b.shape != (nrows,):
        raise ValueError(f"b must have shape ({nrows},), got {b.shape}")
    x = (
        np.zeros(ncols)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    x_init = x.copy()  # pristine fallback for breakdown recovery
    workspace = Workspace()
    matvec_into = into_adapter(A.matvec, workspace)
    rmatvec_into = into_adapter(A.rmatvec, workspace)
    # Preallocated iteration vectors: row-space (nrows) and
    # column-space (ncols) buffers; the sweep writes only into these.
    r = np.empty(nrows)
    w = np.empty(nrows)
    tmp_r = np.empty(nrows)
    z = np.empty(ncols)
    p = np.empty(ncols)
    tmp_c = np.empty(ncols)
    rmatvec_into(b, z)
    z0n = float(np.linalg.norm(z))
    z0 = z0n if np.isfinite(z0n) and z0n > 0.0 else 1.0
    history: list[float] = []

    def restore(x):
        if np.isfinite(x_init).all():
            np.copyto(x, x_init)
        else:
            x.fill(0.0)
        return x

    def sweep(x, budget):
        """One CGNR sweep, updating ``x`` in place; returns
        (x, converged, iterations, reason)."""
        if x.any():
            matvec_into(x, w)
            np.subtract(b, w, out=r)
        else:
            np.copyto(r, b)
        rmatvec_into(r, z)            # normal-equation residual
        zz = float(z @ z)
        history.append(float(np.sqrt(abs(zz))))
        if not np.isfinite(zz):
            return x, False, 0, "non-finite-residual"
        if history[-1] <= tol * z0:
            return x, True, 0, None
        np.copyto(p, z)
        for k in range(1, budget + 1):
            matvec_into(p, w)
            ww = float(w @ w)
            if not np.isfinite(ww):
                return x, False, k - 1, "non-finite-residual"
            if ww == 0.0:
                return x, False, k - 1, "zero-direction"
            alpha = zz / ww
            np.multiply(p, alpha, out=tmp_c)    # x += alpha * p
            np.add(x, tmp_c, out=x)
            np.multiply(w, alpha, out=tmp_r)    # r -= alpha * w
            np.subtract(r, tmp_r, out=r)
            rmatvec_into(r, z)
            zz_new = float(z @ z)
            history.append(float(np.sqrt(abs(zz_new))))
            if not np.isfinite(zz_new):
                return x, False, k, "non-finite-residual"
            if history[-1] <= tol * z0:
                return x, True, k, None
            np.multiply(p, zz_new / zz, out=tmp_c)  # p = z + beta * p
            np.add(z, tmp_c, out=p)
            zz = zz_new
        return x, False, budget, None

    x1, converged, used, reason = sweep(x, maxiter)
    reasons = [reason]
    restarts = 0
    if reason is not None and used < maxiter:
        # One recovery attempt from the last finite iterate.
        restarts = 1
        if not np.isfinite(x1).all():
            x1 = restore(x1)
        x1, converged, used2, reason2 = sweep(x1, maxiter - used)
        used += used2
        reasons.append(reason2)
    if not np.isfinite(x1).all():
        x1 = restore(x1)

    return SolveResult(
        x=x1, converged=converged, iterations=used,
        residual_norm=finite_residual(history),
        residual_history=np.array(history),
        report=make_report(reasons, restarts, converged),
    )
