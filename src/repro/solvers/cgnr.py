"""CGNR — conjugate gradient on the normal equations.

Solves the least-squares problem ``min ||A x - b||_2`` by running CG on
``A^T A x = A^T b`` without ever forming ``A^T A``: each iteration is
one ``matvec`` and one ``rmatvec``, i.e. two SpMV-shaped passes — the
rectangular-system counterpart of the paper's iterative-solver context
(LP matrices like *degme* are rectangular in the wild).
"""

from __future__ import annotations

import numpy as np

from .base import SolveResult

__all__ = ["cgnr"]


def cgnr(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
) -> SolveResult:
    """Solve ``min ||A x - b||`` for an operator with matvec/rmatvec.

    Convergence criterion: ``||A^T r||_2 <= tol * ||A^T b||_2`` (the
    normal-equation residual, the quantity CGNR actually drives down).
    """
    if not (hasattr(A, "matvec") and hasattr(A, "rmatvec")):
        raise TypeError("A must provide matvec and rmatvec")
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    nrows, ncols = A.shape
    if b.shape != (nrows,):
        raise ValueError(f"b must have shape ({nrows},), got {b.shape}")
    x = (
        np.zeros(ncols)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )

    r = b - A.matvec(x) if x.any() else b.copy()
    z = A.rmatvec(r)                  # normal-equation residual
    p = z.copy()
    zz = float(z @ z)
    z0 = float(np.linalg.norm(A.rmatvec(b))) or 1.0
    history = [float(np.sqrt(zz))]

    for k in range(1, maxiter + 1):
        w = A.matvec(p)
        ww = float(w @ w)
        if ww == 0.0:
            break
        alpha = zz / ww
        x += alpha * p
        r -= alpha * w
        z = A.rmatvec(r)
        zz_new = float(z @ z)
        history.append(float(np.sqrt(zz_new)))
        if history[-1] <= tol * z0:
            return SolveResult(
                x=x, converged=True, iterations=k,
                residual_norm=history[-1],
                residual_history=np.array(history),
            )
        p = z + (zz_new / zz) * p
        zz = zz_new

    return SolveResult(
        x=x, converged=False, iterations=min(maxiter, len(history) - 1),
        residual_norm=history[-1], residual_history=np.array(history),
    )
