"""CGNR — conjugate gradient on the normal equations.

Solves the least-squares problem ``min ||A x - b||_2`` by running CG on
``A^T A x = A^T b`` without ever forming ``A^T A``: each iteration is
one ``matvec`` and one ``rmatvec``, i.e. two SpMV-shaped passes — the
rectangular-system counterpart of the paper's iterative-solver context
(LP matrices like *degme* are rectangular in the wild).
"""

from __future__ import annotations

import numpy as np

from .base import SolveResult, finite_residual, make_report

__all__ = ["cgnr"]


def cgnr(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
) -> SolveResult:
    """Solve ``min ||A x - b||`` for an operator with matvec/rmatvec.

    Convergence criterion: ``||A^T r||_2 <= tol * ||A^T b||_2`` (the
    normal-equation residual, the quantity CGNR actually drives down).

    Breakdowns (zero search direction, non-finite residual) trigger one
    restart from the last finite iterate; if that breaks down too, the
    result carries ``report.breakdown=True`` with the reason — and
    ``x`` stays the last finite iterate, never NaN garbage.
    """
    if not (hasattr(A, "matvec") and hasattr(A, "rmatvec")):
        raise TypeError("A must provide matvec and rmatvec")
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    b = np.asarray(b, dtype=np.float64)
    nrows, ncols = A.shape
    if b.shape != (nrows,):
        raise ValueError(f"b must have shape ({nrows},), got {b.shape}")
    x = (
        np.zeros(ncols)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    z0n = float(np.linalg.norm(A.rmatvec(b)))
    z0 = z0n if np.isfinite(z0n) and z0n > 0.0 else 1.0
    history: list[float] = []

    def sweep(x, budget):
        """One CGNR sweep; returns (x, converged, iterations, reason)."""
        r = b - A.matvec(x) if x.any() else b.copy()
        z = A.rmatvec(r)              # normal-equation residual
        zz = float(z @ z)
        history.append(float(np.sqrt(abs(zz))))
        if not np.isfinite(zz):
            return x, False, 0, "non-finite-residual"
        if history[-1] <= tol * z0:
            return x, True, 0, None
        p = z.copy()
        for k in range(1, budget + 1):
            w = A.matvec(p)
            ww = float(w @ w)
            if not np.isfinite(ww):
                return x, False, k - 1, "non-finite-residual"
            if ww == 0.0:
                return x, False, k - 1, "zero-direction"
            alpha = zz / ww
            x = x + alpha * p
            r = r - alpha * w
            z = A.rmatvec(r)
            zz_new = float(z @ z)
            history.append(float(np.sqrt(abs(zz_new))))
            if not np.isfinite(zz_new):
                return x, False, k, "non-finite-residual"
            if history[-1] <= tol * z0:
                return x, True, k, None
            p = z + (zz_new / zz) * p
            zz = zz_new
        return x, False, budget, None

    x1, converged, used, reason = sweep(x, maxiter)
    reasons = [reason]
    restarts = 0
    if reason is not None and used < maxiter:
        # One recovery attempt from the last finite iterate.
        restarts = 1
        if not np.isfinite(x1).all():
            x1 = x if np.isfinite(x).all() else np.zeros(ncols)
        x1, converged, used2, reason2 = sweep(x1, maxiter - used)
        used += used2
        reasons.append(reason2)
    if not np.isfinite(x1).all():
        x1 = x if np.isfinite(x).all() else np.zeros(ncols)

    return SolveResult(
        x=x1, converged=converged, iterations=used,
        residual_norm=finite_residual(history),
        residual_history=np.array(history),
        report=make_report(reasons, restarts, converged),
    )
