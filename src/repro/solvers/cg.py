"""Preconditioned Conjugate Gradient (for SPD systems).

One SpMV per iteration — the solver the paper's amortization analysis
names first. Standard PCG with the Hestenes-Stiefel recurrences.
"""

from __future__ import annotations

import numpy as np

from .base import (
    SolveResult,
    as_matmat,
    as_matvec,
    columnwise,
    identity_preconditioner,
)

__all__ = ["cg"]


def cg(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` for SPD ``A``.

    Convergence criterion: ``||r||_2 <= tol * ||b||_2``.

    A 2-D ``b`` of shape ``(n, k)`` solves all ``k`` systems
    simultaneously through the operator's batched ``matmat`` plane
    (one SpMM per iteration instead of ``k`` SpMVs); the result's
    ``x`` / ``residual_history`` are then column-blocked too.
    """
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        return _block_cg(A, b, x0, tol=tol, maxiter=maxiter,
                         preconditioner=preconditioner)
    matvec = as_matvec(A)
    M = preconditioner or identity_preconditioner
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    r = b - matvec(x) if x.any() else b.copy()
    z = M(r)
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r))]

    for k in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0:
            # Not SPD (or breakdown): stop with what we have.
            return SolveResult(
                x=x, converged=False, iterations=k - 1,
                residual_norm=history[-1],
                residual_history=np.array(history),
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=rnorm,
                residual_history=np.array(history),
            )
        z = M(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    return SolveResult(
        x=x, converged=False, iterations=maxiter,
        residual_norm=history[-1], residual_history=np.array(history),
    )


def _block_cg(A, B, X0, *, tol, maxiter, preconditioner) -> SolveResult:
    """Multi-RHS CG: the scalar recurrences become per-column arrays.

    Each column follows exactly the single-RHS iteration; columns that
    converge (or break down on a non-SPD direction) are frozen via a
    zero step length and a zeroed search direction, so the remaining
    active columns keep iterating with one batched ``matmat`` per step.
    """
    matmat = as_matmat(A)
    M = columnwise(preconditioner or identity_preconditioner)
    n, k = B.shape
    X = (
        np.zeros_like(B)
        if X0 is None
        else np.array(X0, dtype=np.float64, copy=True).reshape(n, k)
    )
    R = B - matmat(X) if X.any() else B.copy()
    Z = M(R)
    P = Z.copy()
    rz = np.einsum("ij,ij->j", R, Z)
    bnorm = np.linalg.norm(B, axis=0)
    bnorm[bnorm == 0.0] = 1.0
    rnorm = np.linalg.norm(R, axis=0)
    history = [rnorm.copy()]
    converged = rnorm <= tol * bnorm
    active = ~converged
    iterations = 0

    for it in range(1, maxiter + 1):
        if not active.any():
            break
        AP = matmat(P)
        pAp = np.einsum("ij,ij->j", P, AP)
        # Non-SPD / breakdown columns stop with what they have.
        broken = active & (pAp <= 0.0)
        active = active & ~broken
        safe = np.where(pAp != 0.0, pAp, 1.0)
        alpha = np.where(active, rz / safe, 0.0)
        X += alpha * P
        R -= alpha * AP
        rnorm = np.linalg.norm(R, axis=0)
        history.append(rnorm.copy())
        iterations = it
        newly = active & (rnorm <= tol * bnorm)
        converged = converged | newly
        active = active & ~newly
        if not active.any():
            break
        Z = M(R)
        rz_new = np.einsum("ij,ij->j", R, Z)
        safe_rz = np.where(rz != 0.0, rz, 1.0)
        beta = np.where(active, rz_new / safe_rz, 0.0)
        rz = np.where(active, rz_new, rz)
        P = Z + beta * P
        P[:, ~active] = 0.0

    final = history[-1]
    return SolveResult(
        x=X, converged=bool(converged.all()), iterations=iterations,
        residual_norm=float(final.max(initial=0.0)),
        residual_history=np.array(history),
    )
