"""Preconditioned Conjugate Gradient (for SPD systems).

One SpMV per iteration — the solver the paper's amortization analysis
names first. Standard PCG with the Hestenes-Stiefel recurrences.
"""

from __future__ import annotations

import numpy as np

from .base import SolveResult, as_matvec, identity_preconditioner

__all__ = ["cg"]


def cg(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
) -> SolveResult:
    """Solve ``A x = b`` for SPD ``A``.

    Convergence criterion: ``||r||_2 <= tol * ||b||_2``.
    """
    matvec = as_matvec(A)
    M = preconditioner or identity_preconditioner
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    r = b - matvec(x) if x.any() else b.copy()
    z = M(r)
    p = z.copy()
    rz = float(r @ z)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history = [float(np.linalg.norm(r))]

    for k in range(1, maxiter + 1):
        Ap = matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0:
            # Not SPD (or breakdown): stop with what we have.
            return SolveResult(
                x=x, converged=False, iterations=k - 1,
                residual_norm=history[-1],
                residual_history=np.array(history),
            )
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= tol * bnorm:
            return SolveResult(
                x=x, converged=True, iterations=k, residual_norm=rnorm,
                residual_history=np.array(history),
            )
        z = M(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    return SolveResult(
        x=x, converged=False, iterations=maxiter,
        residual_norm=history[-1], residual_history=np.array(history),
    )
