"""Preconditioned Conjugate Gradient (for SPD systems).

One SpMV per iteration — the solver the paper's amortization analysis
names first. Standard PCG with the Hestenes-Stiefel recurrences.

The hot loop is fused: every iteration vector is preallocated outside
the sweep, the SpMV writes through the operator's ``out=`` plane into a
reused buffer, and the axpy updates run in place
(``np.multiply``/``np.add(..., out=)``), so a steady-state iteration
performs zero new array allocations. The elementwise operation
sequence is exactly the textbook recurrence, so results are
bit-identical to the allocating formulation.
"""

from __future__ import annotations

import numpy as np

from ..memory import Workspace
from .base import (
    SolveResult,
    as_matmat_into,
    as_matvec_into,
    columnwise,
    finite_residual,
    identity_preconditioner,
    make_report,
)

__all__ = ["cg"]


def cg(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
    maxiter: int = 10_000,
    preconditioner=None,
    callback=None,
) -> SolveResult:
    """Solve ``A x = b`` for SPD ``A``.

    Convergence criterion: ``||r||_2 <= tol * ||b||_2``.

    A 2-D ``b`` of shape ``(n, k)`` solves all ``k`` systems
    simultaneously through the operator's batched ``matmat`` plane
    (one SpMM per iteration instead of ``k`` SpMVs); the result's
    ``x`` / ``residual_history`` are then column-blocked too.

    ``callback(k, rnorm)`` — when given — is invoked after every inner
    iteration of the single-RHS path with the 1-based iteration number
    and the current residual norm (used e.g. by the allocation-tracking
    perf tests to bracket one steady-state iteration).

    Breakdowns (indefinite operator, non-finite residual) trigger one
    restart from the last finite iterate; if the restart breaks down
    too, the result carries ``report.breakdown=True`` with the reason —
    and ``x`` stays the last finite iterate, never NaN garbage.
    """
    b = np.asarray(b, dtype=np.float64)
    if maxiter < 1:
        raise ValueError("maxiter must be >= 1")
    if b.ndim == 2:
        return _block_cg(A, b, x0, tol=tol, maxiter=maxiter,
                         preconditioner=preconditioner)
    matvec_into = as_matvec_into(A, Workspace())
    M = preconditioner or identity_preconditioner
    identity = M is identity_preconditioner
    x = (
        np.zeros_like(b)
        if x0 is None
        else np.array(x0, dtype=np.float64, copy=True)
    )
    x_init = x.copy()  # pristine fallback for breakdown recovery
    bnorm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []
    # Every iteration vector lives outside the sweep; the loop below
    # touches only these buffers.
    r = np.empty_like(b)
    p = np.empty_like(b)
    Ap = np.empty_like(b)
    tmp = np.empty_like(b)

    def restore(x):
        """Reset ``x`` to the pristine start iterate (or zero)."""
        if np.isfinite(x_init).all():
            np.copyto(x, x_init)
        else:
            x.fill(0.0)
        return x

    def sweep(x, budget):
        """One CG sweep, updating ``x`` in place; returns
        (x, converged, iterations, reason)."""
        if x.any():
            matvec_into(x, Ap)
            np.subtract(b, Ap, out=r)
        else:
            np.copyto(r, b)
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if not np.isfinite(rnorm):
            return x, False, 0, "non-finite-residual"
        if rnorm <= tol * bnorm:
            return x, True, 0, None
        z = r if identity else M(r)
        np.copyto(p, z)
        rz = float(r @ z)
        for k in range(1, budget + 1):
            matvec_into(p, Ap)
            pAp = float(p @ Ap)
            if not np.isfinite(pAp):
                return x, False, k - 1, "non-finite-residual"
            if pAp <= 0:
                # Not SPD (or breakdown): stop with what we have.
                return x, False, k - 1, "indefinite-operator"
            alpha = rz / pAp
            np.multiply(p, alpha, out=tmp)      # x += alpha * p
            np.add(x, tmp, out=x)
            np.multiply(Ap, alpha, out=tmp)     # r -= alpha * Ap
            np.subtract(r, tmp, out=r)
            rnorm = float(np.linalg.norm(r))
            history.append(rnorm)
            if callback is not None:
                callback(k, rnorm)
            if not np.isfinite(rnorm):
                return x, False, k, "non-finite-residual"
            if rnorm <= tol * bnorm:
                return x, True, k, None
            z = r if identity else M(r)
            rz_new = float(r @ z)
            beta = rz_new / rz
            rz = rz_new
            np.multiply(p, beta, out=tmp)       # p = z + beta * p
            np.add(z, tmp, out=p)
        return x, False, budget, None

    x1, converged, used, reason = sweep(x, maxiter)
    reasons = [reason]
    restarts = 0
    if reason is not None and used < maxiter:
        # One recovery attempt from the last finite iterate.
        restarts = 1
        if not np.isfinite(x1).all():
            x1 = restore(x1)
        x1, converged, used2, reason2 = sweep(x1, maxiter - used)
        used += used2
        reasons.append(reason2)
    if not np.isfinite(x1).all():
        x1 = restore(x1)

    return SolveResult(
        x=x1, converged=converged, iterations=used,
        residual_norm=finite_residual(history),
        residual_history=np.array(history),
        report=make_report(reasons, restarts, converged),
    )


def _block_cg(A, B, X0, *, tol, maxiter, preconditioner) -> SolveResult:
    """Multi-RHS CG: the scalar recurrences become per-column arrays.

    Each column follows exactly the single-RHS iteration; columns that
    converge (or break down on a non-SPD direction or a non-finite
    residual) are frozen via a zero step length and a zeroed search
    direction, so the remaining active columns keep iterating with one
    batched ``matmat`` per step. Broken columns keep their last finite
    iterate and the aggregate breakdown is reported in ``report``.

    All ``(n, k)`` iteration blocks are preallocated and updated in
    place; the per-step allocations are limited to O(k) control
    vectors (step lengths, norms, masks).
    """
    matmat_into = as_matmat_into(A, Workspace())
    M = columnwise(preconditioner or identity_preconditioner)
    identity = M is identity_preconditioner
    n, k = B.shape
    X = (
        np.zeros_like(B)
        if X0 is None
        else np.array(X0, dtype=np.float64, copy=True).reshape(n, k)
    )
    R = np.empty_like(B)
    P = np.empty_like(B)
    AP = np.empty_like(B)
    tmp = np.empty_like(B)
    if X.any():
        matmat_into(X, AP)
        np.subtract(B, AP, out=R)
    else:
        np.copyto(R, B)
    Z = R if identity else M(R)
    np.copyto(P, Z)
    rz = np.einsum("ij,ij->j", R, Z)
    bnorm = np.linalg.norm(B, axis=0)
    bnorm[bnorm == 0.0] = 1.0
    rnorm = np.linalg.norm(R, axis=0)
    history = [rnorm.copy()]
    converged = rnorm <= tol * bnorm
    active = ~converged
    iterations = 0
    reasons: list[str] = []

    for it in range(1, maxiter + 1):
        if not active.any():
            break
        matmat_into(P, AP)
        pAp = np.einsum("ij,ij->j", P, AP)
        # Non-finite and non-SPD columns stop with what they have.
        nonfinite = active & ~np.isfinite(pAp)
        indefinite = active & np.isfinite(pAp) & (pAp <= 0.0)
        if nonfinite.any():
            reasons.append("non-finite-residual")
        if indefinite.any():
            reasons.append("indefinite-operator")
        active = active & ~nonfinite & ~indefinite
        # Poisoned AP columns are zeroed so frozen columns cannot leak
        # NaN into X/R through a 0 * NaN product.
        AP[:, nonfinite] = 0.0
        safe = np.where(np.isfinite(pAp) & (pAp != 0.0), pAp, 1.0)
        alpha = np.where(active, rz / safe, 0.0)
        np.multiply(P, alpha, out=tmp)          # X += alpha * P
        np.add(X, tmp, out=X)
        np.multiply(AP, alpha, out=tmp)         # R -= alpha * AP
        np.subtract(R, tmp, out=R)
        rnorm = np.linalg.norm(R, axis=0)
        stray = active & ~np.isfinite(rnorm)
        if stray.any():
            reasons.append("non-finite-residual")
            active = active & ~stray
        history.append(rnorm.copy())
        iterations = it
        newly = active & (rnorm <= tol * bnorm)
        converged = converged | newly
        active = active & ~newly
        if not active.any():
            break
        Z = R if identity else M(R)
        rz_new = np.einsum("ij,ij->j", R, Z)
        safe_rz = np.where(rz != 0.0, rz, 1.0)
        beta = np.where(active, rz_new / safe_rz, 0.0)
        rz = np.where(active, rz_new, rz)
        np.multiply(P, beta, out=tmp)           # P = Z + beta * P
        np.add(Z, tmp, out=P)
        P[:, ~active] = 0.0

    final = history[-1]
    final = final[np.isfinite(final)]
    all_converged = bool(converged.all())
    return SolveResult(
        x=X, converged=all_converged, iterations=iterations,
        residual_norm=float(final.max(initial=0.0)),
        residual_history=np.array(history),
        report=make_report(reasons, 0, all_converged),
    )
